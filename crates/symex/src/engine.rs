//! The witness-refutation search driver (§3.2).
//!
//! The search is a backwards, path-program by path-program symbolic
//! execution: starting from a statement that may produce the queried heap
//! edge, it walks the structured statement tree in reverse, forking at
//! branches and calls, inferring loop invariants at loops, and propagating
//! queries from method entries to all call sites. A query is *refuted* when
//! a transfer derives a contradiction; it is *witnessed* when all of its
//! memory constraints are discharged (the query becomes `any`) or it
//! survives, satisfiable, to the program entry.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use pta::{BitSet, HeapEdge, LocId, ModRef, PtaView};
use tir::{Callee, CmdId, Command, MethodId, Operand, Program, Stmt, Ty, VarId};

use crate::config::{LoopMode, Representation, SymexConfig};
use crate::key::{DerefSite, RefKey};
use crate::query::{Query, Refuted};
use crate::region::Region;
use crate::simplify::History;
use crate::stats::{SearchOutcome, SearchStats, StopReason, Witness};
use crate::value::Val;

/// Terminates a search early: a witness was found, or the search must give
/// up for the stated reason.
#[derive(Clone, Debug)]
pub(crate) enum Stop {
    Witnessed(Witness),
    Aborted(StopReason),
}

/// The result of pushing queries backwards: the surviving sub-queries, or an
/// early stop.
pub(crate) type Flow = Result<Vec<Query>, Stop>;

/// Hard cap on upward caller-propagation depth; exceeding it aborts the
/// search (sound: the edge is simply not refuted).
const CALLER_DEPTH_CAP: usize = 40;

/// Deadline polls happen on every `DEADLINE_STRIDE`-th budget charge (plus
/// the very first one), keeping `Instant::now()` off the hot path.
const DEADLINE_STRIDE: u32 = 64;

/// Command-transfer allowance per unit of path-program budget: bounds the
/// straight-line work a search may do between forks, so the per-edge budget
/// is a hard runtime bound even on fork-free divergence.
const CMDS_PER_PATH_PROGRAM: u64 = 256;

/// The witness-refutation engine. One engine holds the analysis inputs and
/// accumulates [`SearchStats`] across searches.
pub struct Engine<'a> {
    pub(crate) program: &'a Program,
    pub(crate) pta: &'a dyn PtaView,
    pub(crate) modref: &'a ModRef,
    /// Engine configuration. May be adjusted between searches; the
    /// deadline fields are snapshotted at construction time.
    pub config: SymexConfig,
    /// Statistics accumulated across all searches run by this engine.
    pub stats: SearchStats,
    pub(crate) history: History,
    budget_left: u64,
    cmd_budget_left: u64,
    call_chain: Vec<MethodId>,
    caller_depth: usize,
    /// Wall-clock cutoff for the edge currently being refuted (the tighter
    /// of `edge_deadline` and the remaining `total_deadline`).
    deadline: Option<Instant>,
    /// Wall-clock cutoff for everything this engine does, from
    /// [`SymexConfig::total_deadline`] at construction time.
    engine_deadline: Option<Instant>,
    /// Charge counter used to amortize deadline polls.
    ticks: u32,
}

impl<'a> Engine<'a> {
    /// Creates an engine over the analyzed program.
    pub fn new(
        program: &'a Program,
        pta: &'a dyn PtaView,
        modref: &'a ModRef,
        config: SymexConfig,
    ) -> Self {
        let budget = config.budget;
        let engine_deadline = config.total_deadline.map(|d| Instant::now() + d);
        Engine {
            program,
            pta,
            modref,
            config,
            stats: SearchStats::default(),
            history: History::new(),
            budget_left: budget,
            cmd_budget_left: budget.saturating_mul(CMDS_PER_PATH_PROGRAM),
            call_chain: Vec::new(),
            caller_depth: 0,
            deadline: None,
            engine_deadline,
            ticks: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SymexConfig {
        &self.config
    }

    /// Resets the per-search state (budgets, history, deadline) at the top
    /// of every [`Engine::refute_edge`] / [`Engine::refute_deref`] call.
    fn begin_search(&mut self) {
        self.budget_left = self.config.budget;
        self.cmd_budget_left = self.config.budget.saturating_mul(CMDS_PER_PATH_PROGRAM);
        self.history.clear();
        self.ticks = 0;
        self.deadline =
            match (self.config.edge_deadline.map(|d| Instant::now() + d), self.engine_deadline) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
    }

    /// Attempts to refute `edge`: runs one witness search per producing
    /// statement. The edge is refuted only if every search is refuted.
    pub fn refute_edge(&mut self, edge: &HeapEdge) -> SearchOutcome {
        self.begin_search();
        let pta = self.pta;
        let producers = pta.producers(edge);
        if producers.is_empty() {
            // Nothing can produce the edge: it is vacuously refuted. (This
            // happens when an annotation removed the only producers.)
            return SearchOutcome::Refuted;
        }
        for &cmd in producers {
            let q0 = match self.initial_query(edge) {
                Ok(q) => q,
                Err(r) => {
                    self.stats.count_refutation(r);
                    continue;
                }
            };
            match self.search_from(cmd, q0, true) {
                Ok(()) => {}
                Err(Stop::Witnessed(w)) => return SearchOutcome::Witnessed(w),
                Err(Stop::Aborted(reason)) => return SearchOutcome::Aborted(reason),
            }
        }
        SearchOutcome::Refuted
    }

    /// Attempts to refute the null-dereference candidate `site`: searches
    /// backwards from the dereferencing command for a path program along
    /// which its base local holds `null`. `Refuted` is a proof that the
    /// base is non-null on every path reaching the dereference.
    ///
    /// The dereferencing command itself is *not* executed backwards — the
    /// question is the state just before it runs.
    pub fn refute_deref(&mut self, site: &DerefSite) -> SearchOutcome {
        self.begin_search();
        let q0 = match self.initial_deref_query(site) {
            Ok(q) => q,
            Err(r) => {
                self.stats.count_refutation(r);
                return SearchOutcome::Refuted;
            }
        };
        match self.search_from(site.cmd, q0, false) {
            Ok(()) => SearchOutcome::Refuted,
            Err(Stop::Witnessed(w)) => SearchOutcome::Witnessed(w),
            Err(Stop::Aborted(reason)) => SearchOutcome::Aborted(reason),
        }
    }

    /// Attempts to refute a [`RefKey`] of either kind.
    pub fn refute_key(&mut self, key: &RefKey) -> SearchOutcome {
        match key {
            RefKey::Edge(e) => self.refute_edge(e),
            RefKey::Deref(s) => self.refute_deref(s),
        }
    }

    /// Fault-contained [`Engine::refute_edge`]: a panic anywhere in the
    /// search (transfer functions, solver, query bookkeeping) is caught and
    /// converted into the sound `Aborted(Panic)` outcome instead of
    /// unwinding into the caller. The engine stays usable afterwards —
    /// `refute_edge` re-initializes all per-edge state on entry.
    pub fn refute_edge_contained(&mut self, edge: &HeapEdge) -> SearchOutcome {
        self.refute_key_contained(&RefKey::Edge(*edge))
    }

    /// Fault-contained [`Engine::refute_key`] (see
    /// [`Engine::refute_edge_contained`]).
    pub fn refute_key_contained(&mut self, key: &RefKey) -> SearchOutcome {
        let result = catch_unwind(AssertUnwindSafe(|| self.refute_key(key)));
        match result {
            Ok(out) => out,
            Err(payload) => {
                SearchOutcome::Aborted(StopReason::Panic(panic_message(payload.as_ref())))
            }
        }
    }

    /// Fault-contained refutation with graceful degradation: if the search
    /// aborts under the configured precision, retry under progressively
    /// coarser — but still sound — configurations (drop loop-invariant
    /// inference, then path atoms, then halve the heap-cell cap) while the
    /// deadline allows. A coarse refutation is still a refutation, so the
    /// ladder can only *add* refutations relative to a single strict pass.
    pub fn refute_edge_resilient(&mut self, edge: &HeapEdge) -> EdgeDecision {
        self.refute_key_resilient(&RefKey::Edge(*edge))
    }

    /// [`Engine::refute_edge_resilient`] generalized over [`RefKey`]. This
    /// is the *only* site bumping the edge-outcome and degradation
    /// counters, so report totals match driver-level tallies exactly.
    pub fn refute_key_resilient(&mut self, key: &RefKey) -> EdgeDecision {
        let timer = obs::timer();
        let _span = obs::span_with(obs::SpanKind::Edge, || key.describe(self.program, self.pta));
        let decision = self.refute_key_resilient_inner(key);
        if obs::enabled() {
            let outcome = match &decision.outcome {
                SearchOutcome::Refuted => obs::Counter::EdgesRefuted,
                SearchOutcome::Witnessed(_) => obs::Counter::EdgesWitnessed,
                SearchOutcome::Aborted(_) => obs::Counter::EdgesAborted,
            };
            obs::add(outcome, 1);
            obs::add(obs::Counter::DegradedRetries, u64::from(decision.attempts.saturating_sub(1)));
            if decision.degraded {
                obs::add(obs::Counter::DegradedDecisions, 1);
            }
            if let SearchOutcome::Witnessed(w) = &decision.outcome {
                obs::observe(obs::Hist::WitnessTraceLen, w.trace.len() as u64);
            }
            obs::observe_elapsed_us(obs::Hist::EdgeMicros, timer);
        }
        decision
    }

    fn refute_key_resilient_inner(&mut self, key: &RefKey) -> EdgeDecision {
        let first = {
            let _attempt = obs::span(obs::SpanKind::Attempt, "strict");
            self.refute_key_contained(key)
        };
        let reason = match first {
            SearchOutcome::Refuted | SearchOutcome::Witnessed(_) => {
                return EdgeDecision { outcome: first, attempts: 1, degraded: false };
            }
            SearchOutcome::Aborted(ref r) => r.clone(),
        };
        let mut attempts = 1;
        if self.config.degrade {
            for coarse in degradation_ladder(&self.config) {
                if self.past_engine_deadline() {
                    break;
                }
                attempts += 1;
                let saved = std::mem::replace(&mut self.config, coarse);
                let out = {
                    let _attempt =
                        obs::span_with(obs::SpanKind::Attempt, || format!("coarse-{attempts}"));
                    self.refute_key_contained(key)
                };
                self.config = saved;
                match out {
                    SearchOutcome::Aborted(_) => continue,
                    // Refuted or Witnessed: the coarse pass decided the
                    // edge. Both are sound to report (a coarse witness only
                    // means "not refuted", same as the abort it replaces).
                    decided => {
                        return EdgeDecision { outcome: decided, attempts, degraded: true };
                    }
                }
            }
        }
        EdgeDecision { outcome: SearchOutcome::Aborted(reason), attempts, degraded: false }
    }

    /// True once the engine-wide deadline (from
    /// [`SymexConfig::total_deadline`]) has expired.
    pub fn past_engine_deadline(&self) -> bool {
        self.engine_deadline.is_some_and(|dl| Instant::now() >= dl)
    }

    /// Overrides the engine-wide deadline with an absolute instant. The
    /// parallel scheduler uses this to share one global cutoff across all
    /// worker engines — each engine otherwise snapshots its own
    /// `total_deadline` at construction time, which would multiply the
    /// allowance by the number of workers.
    pub fn set_deadline_at(&mut self, deadline: Option<Instant>) {
        self.engine_deadline = deadline;
    }

    /// Builds the initial query asserting that `edge` holds, e.g.
    /// `v̂1·f ↦ v̂2 ∧ v̂1 from {base} ∧ v̂2 from {target}` (§3.1).
    pub fn initial_query(&self, edge: &HeapEdge) -> Result<Query, Refuted> {
        let mut q = Query::new();
        match edge {
            HeapEdge::Global { global, target } => {
                let v = q.fresh_sym(Region::singleton(target.index()));
                q.statics.insert(*global, Val::Sym(v));
            }
            HeapEdge::Field { base, field, target } => {
                let o = q.fresh_sym(Region::singleton(base.index()));
                let v = q.fresh_sym(Region::singleton(target.index()));
                let idx = if *field == self.program.contents_field {
                    Some(Val::Sym(q.fresh_sym(Region::Data)))
                } else {
                    None
                };
                q.heap.push(crate::query::HeapCell {
                    obj: o,
                    field: *field,
                    val: Val::Sym(v),
                    idx,
                });
            }
        }
        Ok(q)
    }

    /// Builds the initial query for a null-dereference candidate: the base
    /// local holds `null` in the state just before the dereferencing
    /// command (§3.1 generalized to the null client).
    pub fn initial_deref_query(&self, site: &DerefSite) -> Result<Query, Refuted> {
        let mut q = Query::new();
        q.locals.insert(site.base, Val::Null);
        // The dereference itself anchors the witness trace even though it
        // is not executed backwards.
        q.record(site.cmd, self.config.trace_cap);
        Ok(q)
    }

    /// Runs one witness search from statement `start` with post-query `q0`;
    /// the command at `start` is applied iff `include_cmd`. `Ok(())` means
    /// every path program was refuted.
    pub(crate) fn search_from(
        &mut self,
        start: CmdId,
        q0: Query,
        include_cmd: bool,
    ) -> Result<(), Stop> {
        let _span = obs::span_with(obs::SpanKind::Path, || self.program.describe_cmd(start));
        self.charge(1)?;
        let method = self.program.cmd_method(start);
        let path = self
            .program
            .method(method)
            .body
            .path_to(start)
            .expect("command not found in its own method body");
        self.call_chain.clear();
        self.caller_depth = 0;
        // Borrow the body straight out of the shared program (lifetime 'a,
        // decoupled from `self`) instead of cloning the statement tree.
        let program = self.program;
        let body = &program.method(method).body;
        let qs = self.back_pos(body, &path, q0, include_cmd)?;
        for q in qs {
            self.propagate_up(method, q)?;
        }
        Ok(())
    }

    /// Charges `n` path programs against the budget.
    pub(crate) fn charge(&mut self, n: u64) -> Result<(), Stop> {
        self.stats.add_path_programs(n);
        self.poll_deadline()?;
        if self.budget_left < n {
            self.budget_left = 0;
            return Err(Stop::Aborted(StopReason::ForkBudget));
        }
        self.budget_left -= n;
        Ok(())
    }

    /// Charges one command transfer against the work allowance.
    pub(crate) fn charge_cmd(&mut self) -> Result<(), Stop> {
        self.poll_deadline()?;
        if self.cmd_budget_left == 0 {
            return Err(Stop::Aborted(StopReason::WorkBudget));
        }
        self.cmd_budget_left -= 1;
        Ok(())
    }

    /// Amortized cooperative deadline check: reads the clock on the first
    /// charge after [`Engine::refute_edge`] and then once every
    /// [`DEADLINE_STRIDE`] charges. Free when no deadline is configured.
    #[inline]
    fn poll_deadline(&mut self) -> Result<(), Stop> {
        let Some(dl) = self.deadline else { return Ok(()) };
        self.ticks = self.ticks.wrapping_add(1);
        if self.ticks % DEADLINE_STRIDE == 1 && Instant::now() >= dl {
            return Err(Stop::Aborted(StopReason::WallClock));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Backwards statement walking
    // ------------------------------------------------------------------

    /// Executes backwards from the position `path` inside `stmt` (the
    /// command at that position is applied iff `include_cmd`), returning
    /// the queries at the entry of `stmt`.
    pub(crate) fn back_pos(
        &mut self,
        stmt: &Stmt,
        path: &[usize],
        q: Query,
        include_cmd: bool,
    ) -> Flow {
        match stmt {
            Stmt::Cmd(c) => {
                debug_assert!(path.is_empty());
                if include_cmd {
                    self.exec_cmd_back(*c, q)
                } else {
                    Ok(vec![q])
                }
            }
            Stmt::Skip => Ok(vec![q]),
            Stmt::Seq(ss) => {
                let i = path[0];
                let mut qs = self.back_pos(&ss[i], &path[1..], q, include_cmd)?;
                for child in ss[..i].iter().rev() {
                    qs = self.exec_many(child, qs)?;
                }
                Ok(qs)
            }
            Stmt::If { cond, then_br, else_br } => {
                let branch = path[0];
                let child = if branch == 0 { then_br } else { else_br };
                let qs = self.back_pos(child, &path[1..], q, include_cmd)?;
                let guard = if branch == 0 { cond.clone() } else { cond.negate() };
                let mut out = Vec::new();
                for q in qs {
                    match self.apply_cond(&guard, q) {
                        Ok(Some(q2)) => out.push(q2),
                        Ok(None) => {}
                        Err(stop) => return Err(stop),
                    }
                }
                Ok(out)
            }
            Stmt::Choice(a, b) => {
                let branch = path[0];
                let child = if branch == 0 { a } else { b };
                self.back_pos(child, &path[1..], q, include_cmd)
            }
            Stmt::While { cond, body } => {
                // Starting inside the body: walk back to the body entry,
                // then account for any number of preceding full iterations.
                let seed = self.back_pos(body, &path[1..], q, include_cmd)?;
                self.loop_fixpoint(Some(cond), body, seed)
            }
            Stmt::Loop(body) => {
                let seed = self.back_pos(body, &path[1..], q, include_cmd)?;
                self.loop_fixpoint(None, body, seed)
            }
        }
    }

    /// Executes `stmt` backwards for every query in `qs`.
    pub(crate) fn exec_many(&mut self, stmt: &Stmt, qs: Vec<Query>) -> Flow {
        let mut out = Vec::new();
        for q in qs {
            out.extend(self.exec_stmt_back(stmt, q)?);
        }
        Ok(out)
    }

    /// Executes one whole statement backwards: given the post-query `q`,
    /// returns the surviving pre-queries.
    pub(crate) fn exec_stmt_back(&mut self, stmt: &Stmt, q: Query) -> Flow {
        match stmt {
            Stmt::Skip => Ok(vec![q]),
            Stmt::Cmd(c) => self.exec_cmd_back(*c, q),
            Stmt::Seq(ss) => {
                let mut qs = vec![q];
                for child in ss.iter().rev() {
                    qs = self.exec_many(child, qs)?;
                    if qs.is_empty() {
                        break;
                    }
                }
                Ok(qs)
            }
            Stmt::If { cond, then_br, else_br } => {
                self.charge(1)?; // the extra branch is a fork
                let then_qs = self.exec_stmt_back(then_br, q.clone())?;
                let else_qs = self.exec_stmt_back(else_br, q.clone())?;
                // If neither branch touched the query, the guard is
                // irrelevant path-sensitivity: keep one copy, no constraint
                // (§3.2, following ESP/PSE).
                let untouched = |qs: &[Query]| qs.len() == 1 && qs[0].same_constraints(&q);
                if untouched(&then_qs) && untouched(&else_qs) {
                    return Ok(then_qs);
                }
                let mut out = Vec::new();
                for tq in then_qs {
                    match self.apply_cond(cond, tq) {
                        Ok(Some(q2)) => out.push(q2),
                        Ok(None) => {}
                        Err(stop) => return Err(stop),
                    }
                }
                let neg = cond.negate();
                for eq in else_qs {
                    match self.apply_cond(&neg, eq) {
                        Ok(Some(q2)) => out.push(q2),
                        Ok(None) => {}
                        Err(stop) => return Err(stop),
                    }
                }
                Ok(out)
            }
            Stmt::Choice(a, b) => {
                self.charge(1)?;
                let mut out = self.exec_stmt_back(a, q.clone())?;
                out.extend(self.exec_stmt_back(b, q)?);
                Ok(out)
            }
            Stmt::While { cond, body } => {
                // Zero or more iterations; after the loop ¬cond holds.
                let mut seed = Vec::new();
                match self.apply_cond(&cond.negate(), q) {
                    Ok(Some(q2)) => seed.push(q2),
                    Ok(None) => return Ok(Vec::new()),
                    Err(stop) => return Err(stop),
                }
                self.loop_fixpoint(Some(cond), body, seed)
            }
            Stmt::Loop(body) => self.loop_fixpoint(None, body, vec![q]),
        }
    }

    // ------------------------------------------------------------------
    // Calls
    // ------------------------------------------------------------------

    /// Backwards transfer for a call command.
    pub(crate) fn exec_call_back(&mut self, cmd_id: CmdId, q: Query) -> Flow {
        let Command::Call { dst, callee: _, .. } = self.program.cmd(cmd_id) else {
            unreachable!("exec_call_back on non-call");
        };
        let pta = self.pta;
        let targets = pta.call_targets(cmd_id);

        // Frame rule: skip the call outright if it cannot affect the query.
        // Relevance is checked per cell at location granularity: a callee
        // that writes `contents` of map arrays cannot affect a query cell
        // over a vec array, even though the field matches.
        let dst_relevant = dst.map(|d| q.locals.contains_key(&d)).unwrap_or(false);
        let globals = q.global_footprint();
        let mods_relevant = targets.iter().any(|&t| {
            !self.modref.mod_globals(t).is_disjoint(&globals)
                || q.heap.iter().any(|cell| self.cell_may_be_written(t, cell, &q))
        });
        if !dst_relevant && !mods_relevant {
            self.stats.add_call_skipped_irrelevant();
            return Ok(vec![q]);
        }

        // Depth bound / recursion / unresolved targets: skip soundly by
        // dropping everything the callee might produce.
        let too_deep = self.call_chain.len() >= self.config.max_call_depth;
        let recursive = targets.iter().any(|t| self.call_chain.contains(t));
        if too_deep || recursive || targets.is_empty() {
            self.stats.add_call_skipped_depth();
            return Ok(vec![self.skip_call(cmd_id, targets, q)]);
        }

        if targets.len() > 1 {
            self.charge(targets.len() as u64 - 1)?;
        }
        let mut out = Vec::new();
        for &t in targets {
            let mut qt = q.clone();
            // Receiver narrowing: only locations that dispatch to `t` are
            // compatible with taking this target.
            if let Some(recv_var) = self.call_receiver(cmd_id) {
                if let Some(&Val::Sym(s)) = qt.locals.get(&recv_var) {
                    let dl = self.dispatch_locs(cmd_id, t);
                    if self.config.representation != Representation::FullySymbolic {
                        match qt.narrow(s, &dl) {
                            Ok(()) => {}
                            Err(r) => {
                                self.stats.count_refutation(r);
                                continue;
                            }
                        }
                    } else if qt.region(s).as_locs().map(|l| l.is_disjoint(&dl)).unwrap_or(true) {
                        // PSE-style oracle check without narrowing.
                        self.stats.count_refutation(Refuted::EmptyRegion);
                        continue;
                    }
                } else if let Some(&Val::Null) = qt.locals.get(&recv_var) {
                    // Call on null receiver: path impossible.
                    self.stats.count_refutation(Refuted::Separation);
                    continue;
                }
            }
            // Pending return value: consumed by the callee's trailing
            // return.
            debug_assert!(qt.ret_slot.is_none());
            if let Some(d) = dst {
                qt.ret_slot = q.locals.get(d).copied();
                qt.locals.remove(d);
            }
            self.call_chain.push(t);
            let program = self.program;
            let body = &program.method(t).body;
            let entry_qs = self.exec_stmt_back(body, qt);
            self.call_chain.pop();
            for mut qe in entry_qs? {
                // A pending return that was never consumed means the callee
                // cannot produce the required value along this path — but
                // dropping the constraint is the sound over-approximation.
                qe.ret_slot = None;
                match self.bind_params(cmd_id, t, qe) {
                    Ok(Some(q2)) => out.push(q2),
                    Ok(None) => {}
                    Err(stop) => return Err(stop),
                }
            }
        }
        Ok(out)
    }

    /// The receiver variable of a call, if it is an instance-method call.
    fn call_receiver(&self, cmd_id: CmdId) -> Option<VarId> {
        match self.program.cmd(cmd_id) {
            Command::Call { callee: Callee::Virtual { receiver, .. }, .. } => Some(*receiver),
            Command::Call { callee: Callee::Static { method }, args, .. } => {
                if self.program.method(*method).class.is_some() {
                    match args.first() {
                        Some(Operand::Var(v)) => Some(*v),
                        _ => None,
                    }
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Receiver locations (among `pt(receiver)`) that dispatch to `target`.
    fn dispatch_locs(&self, cmd_id: CmdId, target: MethodId) -> BitSet {
        let Command::Call { callee, .. } = self.program.cmd(cmd_id) else {
            unreachable!();
        };
        let recv = self.call_receiver(cmd_id);
        let recv_pt = match recv {
            Some(r) => self.pta.pt_var(r).clone(),
            None => return BitSet::new(),
        };
        let mut out = BitSet::new();
        for l in recv_pt.iter() {
            let class = self.pta.class_of(LocId(l as u32));
            let ok = match callee {
                Callee::Virtual { method, .. } => {
                    self.program.resolve_method(class, method) == Some(target)
                }
                Callee::Static { method } => {
                    let tc = self.program.method(*method).class.expect("instance method");
                    self.program.is_subclass(class, tc)
                }
            };
            if ok {
                out.insert(l);
            }
        }
        out
    }

    /// True if method `t` may write the concrete cell described by `cell`
    /// (field match plus owner-region overlap with the callee's
    /// location-sensitive write summary).
    fn cell_may_be_written(&self, t: MethodId, cell: &crate::query::HeapCell, q: &Query) -> bool {
        match q.region(cell.obj).as_locs() {
            Some(locs) => self.modref.may_write_cell(t, cell.field, locs),
            // Data-region owner cannot occur; be conservative.
            None => !self.modref.mod_fields(t).is_disjoint(&BitSet::singleton(cell.field.index())),
        }
    }

    /// Sound skip of a call: drop the destination binding and every
    /// constraint the callee's mod summary may cover (cell-granular).
    fn skip_call(&mut self, cmd_id: CmdId, targets: &[MethodId], mut q: Query) -> Query {
        let Command::Call { dst, .. } = self.program.cmd(cmd_id) else { unreachable!() };
        if let Some(d) = dst {
            q.locals.remove(d);
        }
        let mut mod_globals = BitSet::new();
        for &t in targets {
            mod_globals.union_with(self.modref.mod_globals(t));
        }
        if targets.is_empty() {
            // No resolved targets (should not happen for reached code):
            // drop everything heap-related to stay sound.
            q.heap.clear();
            q.statics.clear();
        } else {
            let cells: Vec<crate::query::HeapCell> = q.heap.clone();
            let keep: Vec<bool> = cells
                .iter()
                .map(|cell| !targets.iter().any(|&t| self.cell_may_be_written(t, cell, &q)))
                .collect();
            let mut it = keep.iter();
            q.heap.retain(|_| *it.next().expect("keep flag"));
            q.statics.retain(|g, _| !mod_globals.contains(g.index()));
        }
        q.gc();
        q
    }

    /// Binds callee parameters to the actuals of call site `cmd_id`,
    /// producing the query just before the call in the caller. `Ok(None)`
    /// means the binding refuted the query.
    pub(crate) fn bind_params(
        &mut self,
        cmd_id: CmdId,
        callee: MethodId,
        mut q: Query,
    ) -> Result<Option<Query>, Stop> {
        // Borrow the call command and callee signature out of the shared
        // program (lifetime 'a) instead of cloning them per binding.
        let program = self.program;
        let Command::Call { callee: ckind, args, .. } = program.cmd(cmd_id) else {
            unreachable!("bind_params on non-call");
        };
        // The call site is part of the path program; record it so witness
        // traces stay connected through upward propagation.
        q.record(cmd_id, self.config.trace_cap);
        let callee_m = program.method(callee);
        let is_instance = callee_m.class.is_some();
        // Assemble (param, actual) pairs including the receiver.
        let mut pairs: Vec<(VarId, Operand)> = Vec::new();
        match (ckind, is_instance) {
            (Callee::Virtual { receiver, .. }, true) => {
                pairs.push((callee_m.params[0], Operand::Var(*receiver)));
                for (p, a) in callee_m.params[1..].iter().zip(args.iter()) {
                    pairs.push((*p, *a));
                }
            }
            (Callee::Static { .. }, true) => {
                for (p, a) in callee_m.params.iter().zip(args.iter()) {
                    pairs.push((*p, *a));
                }
            }
            (_, false) => {
                for (p, a) in callee_m.params.iter().zip(args.iter()) {
                    pairs.push((*p, *a));
                }
            }
        }
        for (param, actual) in pairs {
            let Some(v) = q.locals.remove(&param) else { continue };
            let res = self.bind_value_to_operand(&mut q, v, actual);
            match res {
                Ok(()) => {}
                Err(r) => {
                    self.stats.count_refutation(r);
                    return Ok(None);
                }
            }
        }
        // Receiver/argument narrowing may have shrunk owner regions;
        // re-establish graph consistency across the boundary.
        if let Err(r) = self.normalize_cells(&mut q) {
            self.stats.count_refutation(r);
            return Ok(None);
        }
        // The receiver of a virtual call additionally narrows to locations
        // dispatching to this callee (handled in exec_call_back when
        // entering; on upward propagation do it here).
        if let (Callee::Virtual { receiver, .. }, true) = (ckind, is_instance) {
            if let Some(&Val::Sym(s)) = q.locals.get(receiver) {
                if self.config.representation != Representation::FullySymbolic {
                    let dl = self.dispatch_locs(cmd_id, callee);
                    if let Err(r) = q.narrow(s, &dl) {
                        self.stats.count_refutation(r);
                        return Ok(None);
                    }
                }
            }
        }
        Ok(Some(q))
    }

    /// Unifies a required value `v` with an actual operand in the caller
    /// frame: `x := operand` in reverse.
    pub(crate) fn bind_value_to_operand(
        &mut self,
        q: &mut Query,
        v: Val,
        operand: Operand,
    ) -> Result<(), Refuted> {
        match operand {
            Operand::Int(c) => q.unify(v, Val::Int(c)),
            Operand::Null => q.unify(v, Val::Null),
            Operand::Var(y) => {
                if let Val::Sym(s) = v {
                    if self.config.representation != Representation::FullySymbolic
                        && self.program.var(y).ty.is_ref()
                    {
                        q.narrow(s, self.pta.pt_var(y))?;
                    }
                }
                match q.locals.get(&y).copied() {
                    Some(w) => q.unify(v, w),
                    None => {
                        q.locals.insert(y, v);
                        Ok(())
                    }
                }
            }
        }
    }

    /// Gets the value bound to `var`, creating a fresh symbolic value (with
    /// its `from` region seeded from the points-to set) if unbound.
    pub(crate) fn get_or_bind(&mut self, q: &mut Query, var: VarId) -> Result<Val, Refuted> {
        if let Some(&v) = q.locals.get(&var) {
            return Ok(v);
        }
        let v = match self.program.var(var).ty {
            Ty::Int => Val::Sym(q.fresh_sym(Region::Data)),
            Ty::Ref(_) => {
                let pt = self.pta.pt_var(var);
                if pt.is_empty() {
                    // The variable can never hold an instance.
                    return Err(Refuted::EmptyRegion);
                }
                Val::Sym(q.fresh_sym(Region::locs(pt.clone())))
            }
        };
        q.locals.insert(var, v);
        Ok(v)
    }

    // ------------------------------------------------------------------
    // Upward propagation
    // ------------------------------------------------------------------

    /// Propagates a query that reached the entry of `method` to every call
    /// site of `method`; at the program entry the query is decided.
    /// `Ok(())` means all upward paths were refuted.
    pub(crate) fn propagate_up(&mut self, method: MethodId, mut q: Query) -> Result<(), Stop> {
        // Heap-consistency narrowing at the procedure boundary.
        if let Err(r) = self.normalize_cells(&mut q) {
            self.stats.count_refutation(r);
            return Ok(());
        }
        q.gc();
        // Query-history subsumption at the procedure boundary (§3.3).
        if self.config.simplification {
            let strict = self.config.representation == Representation::FullySymbolic;
            if self.history.subsumes_at(crate::simplify::Point::MethodEntry(method), &q, strict) {
                self.stats.add_subsumed();
                return Ok(());
            }
            self.history.insert(crate::simplify::Point::MethodEntry(method), q.clone());
        }

        if Some(method) == self.program.entry_opt() {
            return match q.check_at_entry() {
                Ok(()) => Err(Stop::Witnessed(self.make_witness(&q))),
                Err(r) => {
                    self.stats.count_refutation(r);
                    Ok(())
                }
            };
        }

        let pta = self.pta;
        let callers = pta.callers(method);
        if callers.is_empty() {
            // Unreachable code cannot witness anything.
            self.stats.count_refutation(Refuted::Entry);
            return Ok(());
        }
        if self.caller_depth >= CALLER_DEPTH_CAP {
            return Err(Stop::Aborted(StopReason::CallerDepth));
        }
        if callers.len() > 1 {
            self.charge(callers.len() as u64 - 1)?;
        }
        for &c in callers {
            let caller_m = self.program.cmd_method(c);
            let Some(q2) = self.bind_params(c, method, q.clone())? else { continue };
            let program = self.program;
            let body = &program.method(caller_m).body;
            let path = body.path_to(c).expect("call site in caller body");
            self.caller_depth += 1;
            let saved_chain = std::mem::take(&mut self.call_chain);
            let qs = self.back_pos(body, &path, q2, false);
            self.call_chain = saved_chain;
            let qs = match qs {
                Ok(qs) => qs,
                Err(stop) => {
                    self.caller_depth -= 1;
                    return Err(stop);
                }
            };
            for q3 in qs {
                if let Err(stop) = self.propagate_up(caller_m, q3) {
                    self.caller_depth -= 1;
                    return Err(stop);
                }
            }
            self.caller_depth -= 1;
        }
        Ok(())
    }

    /// Builds a witness record from a discharged or entry-satisfiable query.
    pub(crate) fn make_witness(&self, q: &Query) -> Witness {
        Witness { trace: q.trace.clone(), final_query: q.describe(self.program) }
    }
}

/// Outcome of [`Engine::refute_edge_resilient`], with retry provenance.
#[derive(Clone, Debug)]
pub struct EdgeDecision {
    /// The final outcome for the edge.
    pub outcome: SearchOutcome,
    /// Total refutation attempts (1 = the strict pass alone).
    pub attempts: u32,
    /// True when the outcome came from a coarsened (degraded) retry rather
    /// than the originally configured precision.
    pub degraded: bool,
}

/// The graceful degradation ladder: successively coarser — but still sound —
/// configurations derived from `base`. Each step over-approximates the
/// previous one, so any refutation it produces is still a valid proof.
fn degradation_ladder(base: &SymexConfig) -> Vec<SymexConfig> {
    let mut steps = Vec::new();
    let mut cfg = base.clone();
    cfg.degrade = false;
    cfg.inject_panic_on_new = None;
    if cfg.loop_mode != LoopMode::DropAll {
        cfg.loop_mode = LoopMode::DropAll;
        steps.push(cfg.clone());
    }
    if cfg.max_path_atoms > 0 {
        cfg.max_path_atoms = 0;
        steps.push(cfg.clone());
    }
    if cfg.max_heap_cells > 4 {
        cfg.max_heap_cells /= 2;
        steps.push(cfg);
    }
    steps
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
