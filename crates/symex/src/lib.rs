//! # symex — backwards witness-refutation search
//!
//! The core contribution of *Thresher: Precise Refutations for Heap
//! Reachability* (PLDI 2013): a goal-directed, backwards symbolic execution
//! that refines a flow-insensitive points-to analysis with flow-, context-,
//! and path-sensitivity on demand.
//!
//! Given a may points-to edge deemed feasible by the up-front analysis, the
//! [`Engine`] searches for a *path program witness* — an over-approximate
//! path program ending in a state where the edge holds. A failed search is a
//! sound refutation of the edge; a successful one yields a [`Witness`]
//! usable for triage.
//!
//! The distinctive pieces, each mapped to the paper:
//! - **mixed symbolic-explicit queries** ([`Query`]): symbolic values carry
//!   `from` instance constraints ([`Region`]) that are narrowed as values
//!   flow backwards, deriving contradictions long before allocation sites
//!   (§2.2);
//! - **strong updates** in the backwards transfer functions of Figure 4,
//!   including the produced/not-produced case split for heap writes;
//! - **loop invariant inference** over heap constraints with a
//!   materialization bound and path-constraint widening (§3.3);
//! - **query simplification**: history-based subsumption at procedure
//!   boundaries and loop heads (§3.3);
//! - **ablation modes** ([`Representation`], [`LoopMode`],
//!   [`SymexConfig::simplification`]) reproducing the §4 experiments.
//!
//! ```
//! use pta::{analyze, ContextPolicy, HeapEdge, ModRef};
//! use symex::{Engine, SymexConfig};
//!
//! let program = tir::parse(r#"
//! global G: Object;
//! fn main() {
//!   var o: Object;
//!   var s: Object;
//!   o = new Object @obj0;
//!   s = new Object @str0;
//!   $G = s;
//! }
//! entry main;
//! "#)?;
//! let pta = analyze(&program, ContextPolicy::Insensitive);
//! let modref = ModRef::compute(&program, &pta);
//! let mut engine = Engine::new(&program, &pta, &modref, SymexConfig::default());
//!
//! // $G can only hold str0; the edge to str0 is witnessed...
//! let g = program.global_by_name("G").unwrap();
//! let str0 = pta.locs().ids().find(|&l| pta.loc_name(&program, l) == "str0").unwrap();
//! assert!(engine.refute_edge(&HeapEdge::Global { global: g, target: str0 }).is_witnessed());
//! # Ok::<(), tir::ParseError>(())
//! ```

#![warn(missing_docs)]

mod config;
mod engine;
mod key;
mod loops;
pub mod parallel;
pub mod persist;
mod query;
mod region;
pub mod replay;
mod simplify;
mod stats;
mod transfer;
mod value;

pub use config::{LoopMode, Representation, SymexConfig};
pub use engine::{EdgeDecision, Engine};
pub use key::{DerefSite, RefKey};
pub use parallel::{
    default_jobs, EdgeAnswer, JobVerdict, ReachJob, RefutationScheduler, SchedulerOutcome, Tally,
};
pub use persist::{
    CacheMode, DecisionStore, Fingerprinter, MethodHashCache, PersistedDecision, StoreLimits,
};
pub use query::{HeapCell, Query, Refuted};
pub use region::Region;
pub use replay::{validate_witness, ReplayVerdict};
pub use stats::{AbortCounts, RefutationCounts, SearchOutcome, SearchStats, StopReason, Witness};
pub use value::{SymId, Val};
