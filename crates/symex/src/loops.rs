//! On-the-fly loop invariant inference (§3.3).
//!
//! For each individual query reaching a loop (backwards), the engine
//! saturates the set of loop-head queries by repeatedly applying the body's
//! backwards transfer, with three convergence devices mirrored from the
//! paper:
//!
//! 1. **Subsumption**: a new query entailed by one already in the set is
//!    dropped (refuting the weaker query refutes it too).
//! 2. **Materialization bound**: the number of heap cells per field may grow
//!    by at most [`SymexConfig::materialization_bound`] over the seed — the
//!    paper's "static bound on the number of instances of each abstract
//!    location" (bound 1 in the evaluation).
//! 3. **Widening**: after [`SymexConfig::loop_iter_cap`] rounds, path
//!    constraints are dropped ("a trivial widening that drops pure
//!    constraints that may be modified by the loop"); if the set still
//!    grows, the remaining queries fall back to drop-all weakening.
//!
//! All three devices only ever *weaken* queries, preserving refutation
//! soundness (Theorem 1).
//!
//! [`SymexConfig::materialization_bound`]: crate::SymexConfig::materialization_bound
//! [`SymexConfig::loop_iter_cap`]: crate::SymexConfig::loop_iter_cap

use std::collections::HashMap;

use pta::BitSet;
use tir::{Cond, FieldId, Stmt};

use crate::config::{LoopMode, Representation};
use crate::engine::{Engine, Flow};
use crate::query::Query;

impl Engine<'_> {
    /// Computes the loop-head query set for a loop with optional guard
    /// `cond` and body `body`, seeded by `seed` (queries already at the
    /// loop head). Returns the queries that flow out of the loop backwards
    /// (to the program point before the loop).
    pub(crate) fn loop_fixpoint(
        &mut self,
        cond: Option<&Cond>,
        body: &Stmt,
        seed: Vec<Query>,
    ) -> Flow {
        if seed.is_empty() {
            return Ok(Vec::new());
        }
        self.stats.add_loop_fixpoint();
        let _span = obs::span_with(obs::SpanKind::LoopFixpoint, || format!("seed={}", seed.len()));
        if self.config.loop_mode == LoopMode::DropAll {
            let mut out = Vec::new();
            for q in seed {
                out.push(self.drop_loop_affected(body, q));
            }
            return Ok(out);
        }

        // Per-field materialization budget relative to the seed.
        let mut cell_cap: HashMap<FieldId, usize> = HashMap::new();
        for q in &seed {
            let mut counts: HashMap<FieldId, usize> = HashMap::new();
            for c in &q.heap {
                *counts.entry(c.field).or_insert(0) += 1;
            }
            for (f, n) in counts {
                let e = cell_cap.entry(f).or_insert(0);
                *e = (*e).max(n);
            }
        }
        let bound = self.config.materialization_bound;
        let strict = self.config.representation == Representation::FullySymbolic;

        let mut set: Vec<Query> = Vec::new();
        let mut work: Vec<(Query, usize)> = Vec::new();
        let mut marks: Vec<u32> = Vec::new();
        for mut q in seed {
            if let Err(r) = self.normalize_cells(&mut q) {
                self.stats.count_refutation(r);
                continue;
            }
            q.gc();
            if !subsumed_by(&set, &q, strict) {
                marks.push(q.sym_mark());
                set.push(q.clone());
                work.push((q, 0));
            }
        }
        // Widening discards constraints over values first materialized
        // inside the loop analysis; constraints over loop-invariant values
        // survive (the paper drops only "pure constraints that may be
        // modified by the loop").
        let mark = marks.iter().copied().min().unwrap_or(0);
        let cap = self.config.loop_iter_cap;
        while let Some((q, round)) = work.pop() {
            // One more backwards pass over (assume cond; body).
            let stepped = self.exec_stmt_back(body, q)?;
            for mut q2 in stepped {
                if let Some(c) = cond {
                    match self.apply_cond(c, q2)? {
                        Some(next) => q2 = next,
                        None => continue,
                    }
                }
                // Materialization bound: trim per-field cell growth.
                self.enforce_cell_cap(&mut q2, &cell_cap, bound);
                // Widening: past the iteration cap, drop loop-derived pure
                // constraints.
                if round + 1 >= cap {
                    obs::add(obs::Counter::LoopWidenings, 1);
                    q2.drop_atoms_since(mark);
                }
                // Fallback: far past the cap, weaken to the drop-all state.
                if round + 1 >= 3 * cap {
                    obs::add(obs::Counter::LoopDropAllFallbacks, 1);
                    q2 = self.drop_loop_affected(body, q2);
                }
                q2.gc();
                if !subsumed_by(&set, &q2, strict) {
                    if self.config.simplification {
                        // With simplification the set is kept minimal:
                        // remove entries stronger than the newcomer.
                        set.retain(|old| !old.entails(&q2, strict));
                    }
                    self.charge(1)?;
                    set.push(q2.clone());
                    work.push((q2, round + 1));
                }
            }
        }
        Ok(set)
    }

    /// Trims heap cells of `q` so no field exceeds its seed count plus the
    /// materialization bound. Newest cells (appended last) are dropped
    /// first — a sound weakening.
    fn enforce_cell_cap(
        &mut self,
        q: &mut Query,
        cell_cap: &HashMap<FieldId, usize>,
        bound: usize,
    ) {
        let mut counts: HashMap<FieldId, usize> = HashMap::new();
        for c in &q.heap {
            *counts.entry(c.field).or_insert(0) += 1;
        }
        let mut excess: HashMap<FieldId, usize> = HashMap::new();
        for (f, n) in counts {
            let cap = cell_cap.get(&f).copied().unwrap_or(0) + bound;
            if n > cap {
                excess.insert(f, n - cap);
            }
        }
        if excess.is_empty() {
            return;
        }
        // Drop from the back (most recently materialized).
        let mut i = q.heap.len();
        while i > 0 {
            i -= 1;
            let f = q.heap[i].field;
            if let Some(e) = excess.get_mut(&f) {
                if *e > 0 {
                    q.heap.remove(i);
                    *e -= 1;
                }
            }
        }
    }

    /// The drop-all weakening (hypothesis-3 ablation, also the widening
    /// fallback): removes every constraint the loop body may modify —
    /// bindings of assigned locals, heap cells of written fields, written
    /// globals — then garbage-collects dangling pure constraints.
    pub(crate) fn drop_loop_affected(&mut self, body: &Stmt, mut q: Query) -> Query {
        let mut mod_fields = BitSet::new();
        let mut mod_globals = BitSet::new();
        let mut assigned: Vec<tir::VarId> = Vec::new();
        let program = self.program;
        body.for_each_cmd(&mut |c| {
            let cmd = program.cmd(c);
            if let Some(d) = cmd.def() {
                assigned.push(d);
            }
            match cmd {
                tir::Command::WriteField { field, .. } => {
                    mod_fields.insert(field.index());
                }
                tir::Command::WriteArray { .. } => {
                    mod_fields.insert(program.contents_field.index());
                }
                tir::Command::WriteGlobal { global, .. } => {
                    mod_globals.insert(global.index());
                }
                tir::Command::Call { .. } => {
                    for &t in self.pta.call_targets(c) {
                        mod_fields.union_with(self.modref.mod_fields(t));
                        mod_globals.union_with(self.modref.mod_globals(t));
                    }
                }
                _ => {}
            }
        });
        for v in assigned {
            q.locals.remove(&v);
        }
        q.heap.retain(|c| !mod_fields.contains(c.field.index()));
        q.statics.retain(|g, _| !mod_globals.contains(g.index()));
        q.path = Default::default();
        q.gc();
        q
    }
}

/// True if `q` is entailed-covered by a member of `set`: there is a weaker
/// query already scheduled, so refuting it refutes `q` too.
fn subsumed_by(set: &[Query], q: &Query, strict: bool) -> bool {
    set.iter().any(|old| q.entails(old, strict))
}
