//! On-the-fly loop invariant inference (§3.3).
//!
//! For each individual query reaching a loop (backwards), the engine
//! saturates the set of loop-head queries by repeatedly applying the body's
//! backwards transfer, with three convergence devices mirrored from the
//! paper:
//!
//! 1. **Subsumption**: a new query entailed by one already in the set is
//!    dropped (refuting the weaker query refutes it too).
//! 2. **Materialization bound**: the number of heap cells per field may grow
//!    by at most [`SymexConfig::materialization_bound`] over the seed — the
//!    paper's "static bound on the number of instances of each abstract
//!    location" (bound 1 in the evaluation).
//! 3. **Widening**: after [`SymexConfig::loop_iter_cap`] rounds, path
//!    constraints are dropped ("a trivial widening that drops pure
//!    constraints that may be modified by the loop"); if the set still
//!    grows, the remaining queries fall back to drop-all weakening.
//!
//! All three devices only ever *weaken* queries, preserving refutation
//! soundness (Theorem 1).
//!
//! [`SymexConfig::materialization_bound`]: crate::SymexConfig::materialization_bound
//! [`SymexConfig::loop_iter_cap`]: crate::SymexConfig::loop_iter_cap

use std::collections::HashMap;

use pta::BitSet;
use tir::{Cond, FieldId, Stmt};

use crate::config::{LoopMode, Representation};
use crate::engine::{Engine, Flow};
use crate::query::Query;

impl Engine<'_> {
    /// Computes the loop-head query set for a loop with optional guard
    /// `cond` and body `body`, seeded by `seed` (queries already at the
    /// loop head). Returns the queries that flow out of the loop backwards
    /// (to the program point before the loop).
    pub(crate) fn loop_fixpoint(
        &mut self,
        cond: Option<&Cond>,
        body: &Stmt,
        seed: Vec<Query>,
    ) -> Flow {
        if seed.is_empty() {
            return Ok(Vec::new());
        }
        self.stats.add_loop_fixpoint();
        let _span = obs::span_with(obs::SpanKind::LoopFixpoint, || format!("seed={}", seed.len()));
        if self.config.loop_mode == LoopMode::DropAll {
            let mut out = Vec::new();
            for q in seed {
                out.push(self.drop_loop_affected(body, q));
            }
            return Ok(out);
        }

        // Per-field materialization budget relative to the seed.
        let mut cell_cap: HashMap<FieldId, usize> = HashMap::new();
        for q in &seed {
            let mut counts: HashMap<FieldId, usize> = HashMap::new();
            for c in &q.heap {
                *counts.entry(c.field).or_insert(0) += 1;
            }
            for (f, n) in counts {
                let e = cell_cap.entry(f).or_insert(0);
                *e = (*e).max(n);
            }
        }
        let bound = self.config.materialization_bound;
        let strict = self.config.representation == Representation::FullySymbolic;

        let mut set: Vec<Query> = Vec::new();
        let mut work: Vec<(Query, usize)> = Vec::new();
        let mut marks: Vec<u32> = Vec::new();
        for mut q in seed {
            if let Err(r) = self.normalize_cells(&mut q) {
                self.stats.count_refutation(r);
                continue;
            }
            q.gc();
            if !subsumed_by(&set, &q, strict) {
                marks.push(q.sym_mark());
                set.push(q.clone());
                work.push((q, 0));
            }
        }
        // Widening discards constraints over values first materialized
        // inside the loop analysis; constraints over loop-invariant values
        // survive (the paper drops only "pure constraints that may be
        // modified by the loop").
        let mark = marks.iter().copied().min().unwrap_or(0);
        let cap = self.config.loop_iter_cap;
        while let Some((q, round)) = work.pop() {
            // One more backwards pass over (assume cond; body).
            let stepped = self.exec_stmt_back(body, q)?;
            for mut q2 in stepped {
                if let Some(c) = cond {
                    match self.apply_cond(c, q2)? {
                        Some(next) => q2 = next,
                        None => continue,
                    }
                }
                // Materialization bound: trim per-field cell growth.
                self.enforce_cell_cap(&mut q2, &cell_cap, bound);
                // Widening: past the iteration cap, drop loop-derived pure
                // constraints.
                if round + 1 >= cap {
                    obs::add(obs::Counter::LoopWidenings, 1);
                    q2.drop_atoms_since(mark);
                }
                // Fallback: far past the cap, weaken to the drop-all state.
                if round + 1 >= 3 * cap {
                    obs::add(obs::Counter::LoopDropAllFallbacks, 1);
                    q2 = self.drop_loop_affected(body, q2);
                }
                q2.gc();
                if !subsumed_by(&set, &q2, strict) {
                    if self.config.simplification {
                        // With simplification the set is kept minimal:
                        // remove entries stronger than the newcomer.
                        set.retain(|old| !old.entails(&q2, strict));
                    }
                    self.charge(1)?;
                    set.push(q2.clone());
                    work.push((q2, round + 1));
                }
            }
        }
        Ok(set)
    }

    /// Trims heap cells of `q` so no field exceeds its seed count plus the
    /// materialization bound. Newest cells (appended last) are dropped
    /// first — a sound weakening.
    fn enforce_cell_cap(
        &mut self,
        q: &mut Query,
        cell_cap: &HashMap<FieldId, usize>,
        bound: usize,
    ) {
        let mut counts: HashMap<FieldId, usize> = HashMap::new();
        for c in &q.heap {
            *counts.entry(c.field).or_insert(0) += 1;
        }
        let mut excess: HashMap<FieldId, usize> = HashMap::new();
        for (f, n) in counts {
            let cap = cell_cap.get(&f).copied().unwrap_or(0) + bound;
            if n > cap {
                excess.insert(f, n - cap);
            }
        }
        if excess.is_empty() {
            return;
        }
        // Drop from the back (most recently materialized).
        let mut i = q.heap.len();
        while i > 0 {
            i -= 1;
            let f = q.heap[i].field;
            if let Some(e) = excess.get_mut(&f) {
                if *e > 0 {
                    q.heap.remove(i);
                    *e -= 1;
                }
            }
        }
    }

    /// The drop-all weakening (hypothesis-3 ablation, also the widening
    /// fallback): removes every constraint the loop body may modify —
    /// bindings of assigned locals, heap cells of written fields, written
    /// globals — then garbage-collects dangling pure constraints.
    pub(crate) fn drop_loop_affected(&mut self, body: &Stmt, mut q: Query) -> Query {
        let mut mod_fields = BitSet::new();
        let mut mod_globals = BitSet::new();
        let mut assigned: Vec<tir::VarId> = Vec::new();
        let program = self.program;
        body.for_each_cmd(&mut |c| {
            let cmd = program.cmd(c);
            if let Some(d) = cmd.def() {
                assigned.push(d);
            }
            match cmd {
                tir::Command::WriteField { field, .. } => {
                    mod_fields.insert(field.index());
                }
                tir::Command::WriteArray { .. } => {
                    mod_fields.insert(program.contents_field.index());
                }
                tir::Command::WriteGlobal { global, .. } => {
                    mod_globals.insert(global.index());
                }
                tir::Command::Call { .. } => {
                    for &t in self.pta.call_targets(c) {
                        mod_fields.union_with(self.modref.mod_fields(t));
                        mod_globals.union_with(self.modref.mod_globals(t));
                    }
                }
                _ => {}
            }
        });
        for v in assigned {
            q.locals.remove(&v);
        }
        q.heap.retain(|c| !mod_fields.contains(c.field.index()));
        q.statics.retain(|g, _| !mod_globals.contains(g.index()));
        q.path = Default::default();
        q.gc();
        q
    }
}

/// True if `q` is entailed-covered by a member of `set`: there is a weaker
/// query already scheduled, so refuting it refutes `q` too.
fn subsumed_by(set: &[Query], q: &Query, strict: bool) -> bool {
    set.iter().any(|old| q.entails(old, strict))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SymexConfig;
    use crate::query::HeapCell;
    use crate::region::Region;
    use crate::value::Val;
    use pta::{ContextPolicy, HeapEdge, LocId, ModRef, PtaResult};
    use solver::Term;
    use tir::{AllocId, BinOp, CmpOp, GlobalId, Program, ProgramBuilder, Ty, VarId};

    /// A hand-built loop program:
    ///
    /// ```text
    /// n = new Node @n0; o = new Object @o0; i = 0; n.next = n;
    /// while (i < 10) { n.val = o; i = i + 1; }
    /// $OUT = o;
    /// ```
    struct LoopProg {
        program: Program,
        n: VarId,
        i: VarId,
        next_f: FieldId,
        val_f: FieldId,
        out_g: GlobalId,
        n0: AllocId,
        o0: AllocId,
    }

    fn loop_program() -> LoopProg {
        let mut b = ProgramBuilder::new();
        let object = b.object_class();
        let node = b.class("Node", None);
        let next_f = b.field(node, "next", Ty::Ref(node));
        let val_f = b.field(node, "val", Ty::Ref(object));
        let out_g = b.global("OUT", Ty::Ref(object));
        let mut ids = None;
        let main = b.method(None, "main", &[], None, |mb| {
            let n = mb.var("n", Ty::Ref(node));
            let o = mb.var("o", Ty::Ref(object));
            let i = mb.var("i", Ty::Int);
            let n0 = mb.new_obj(n, node, "n0");
            let o0 = mb.new_obj(o, object, "o0");
            mb.assign(i, 0);
            mb.write_field(n, next_f, n);
            mb.while_(Cond::cmp(CmpOp::Lt, i, 10), |mb| {
                mb.write_field(n, val_f, o);
                mb.binop(i, BinOp::Add, i, 1);
            });
            mb.write_global(out_g, o);
            ids = Some((n, i, n0, o0));
        });
        b.set_entry(main);
        let (n, i, n0, o0) = ids.expect("builder ran");
        LoopProg { program: b.finish(), n, i, next_f, val_f, out_g, n0, o0 }
    }

    fn loc_of(pta: &PtaResult, a: AllocId) -> LocId {
        LocId(pta.alloc_locs(a).iter().next().expect("allocated") as u32)
    }

    /// Finds the (unique) `while` statement of `main`.
    fn find_while(stmt: &Stmt) -> Option<(&Cond, &Stmt)> {
        match stmt {
            Stmt::While { cond, body } => Some((cond, body)),
            Stmt::Seq(ss) => ss.iter().find_map(find_while),
            Stmt::If { then_br, else_br, .. } => {
                find_while(then_br).or_else(|| find_while(else_br))
            }
            Stmt::Loop(b) => find_while(b),
            Stmt::Choice(a, b) => find_while(a).or_else(|| find_while(b)),
            _ => None,
        }
    }

    /// A loop-head query constraining the loop-written field, the
    /// loop-assigned counter, a loop-invariant field, and a global, with a
    /// pure path atom — one representative of everything the convergence
    /// devices may touch.
    fn seed_query(lp: &LoopProg, pta: &PtaResult) -> Query {
        let mut q = Query::new();
        let sn = q.fresh_sym(Region::singleton(loc_of(pta, lp.n0).index()));
        let so = q.fresh_sym(Region::singleton(loc_of(pta, lp.o0).index()));
        q.locals.insert(lp.n, Val::Sym(sn));
        q.locals.insert(lp.i, Val::Int(3));
        q.heap.push(HeapCell { obj: sn, field: lp.val_f, val: Val::Sym(so), idx: None });
        q.heap.push(HeapCell { obj: sn, field: lp.next_f, val: Val::Sym(sn), idx: None });
        q.statics.insert(lp.out_g, Val::Sym(so));
        q.path.add(CmpOp::Ne, Term::sym(so.0), Term::int(0));
        q
    }

    #[test]
    fn hand_built_loop_reaches_fixpoint_and_witnesses() {
        let lp = loop_program();
        let pta = pta::analyze(&lp.program, ContextPolicy::Insensitive);
        let modref = ModRef::compute(&lp.program, &pta);
        let mut engine = Engine::new(&lp.program, &pta, &modref, SymexConfig::default());
        // Both concrete edges flow backwards through the loop: the field
        // store is produced inside it, the global store sits after it.
        let field_edge = HeapEdge::Field {
            base: loc_of(&pta, lp.n0),
            field: lp.val_f,
            target: loc_of(&pta, lp.o0),
        };
        let global_edge = HeapEdge::Global { global: lp.out_g, target: loc_of(&pta, lp.o0) };
        assert!(!engine.refute_edge(&field_edge).is_refuted(), "loop store is concrete");
        assert!(!engine.refute_edge(&global_edge).is_refuted(), "post-loop store is concrete");
        assert!(engine.stats.loop_fixpoints >= 1, "no loop fixpoint was ever computed");
    }

    #[test]
    fn fixpoint_covers_its_seed() {
        let lp = loop_program();
        let pta = pta::analyze(&lp.program, ContextPolicy::Insensitive);
        let modref = ModRef::compute(&lp.program, &pta);
        let mut engine = Engine::new(&lp.program, &pta, &modref, SymexConfig::default());
        let main = lp.program.method(lp.program.entry());
        let (cond, body) = find_while(&main.body).expect("main has a while loop");
        let seed = seed_query(&lp, &pta);
        let out = engine
            .loop_fixpoint(Some(cond), body, vec![seed.clone()])
            .expect("fixpoint terminates within the default budget");
        assert!(!out.is_empty(), "the saturated set lost the seed");
        // Soundness shape of the fixed point: some member is weaker than
        // (entailed by) the seed, so refuting the set refutes the seed.
        assert!(
            out.iter().any(|w| seed.entails(w, false)),
            "no member of the fixed point covers the seed query"
        );
    }

    #[test]
    fn drop_all_weakening_drops_loop_touched_constraints_only() {
        let lp = loop_program();
        let pta = pta::analyze(&lp.program, ContextPolicy::Insensitive);
        let modref = ModRef::compute(&lp.program, &pta);
        let mut engine = Engine::new(&lp.program, &pta, &modref, SymexConfig::default());
        let main = lp.program.method(lp.program.entry());
        let (_, body) = find_while(&main.body).expect("main has a while loop");
        let q = engine.drop_loop_affected(body, seed_query(&lp, &pta));
        // Loop-modified state is gone...
        assert!(!q.locals.contains_key(&lp.i), "binding of the loop counter survived");
        assert!(
            q.heap.iter().all(|c| c.field != lp.val_f),
            "cell of the loop-written field survived"
        );
        assert!(q.path.is_empty(), "pure path constraints must be dropped");
        // ...while loop-invariant state survives.
        assert!(q.locals.contains_key(&lp.n), "binding of an untouched local was lost");
        assert!(
            q.heap.iter().any(|c| c.field == lp.next_f),
            "cell of a field the loop never writes was lost"
        );
        assert!(q.statics.contains_key(&lp.out_g), "a global the loop never writes was lost");
    }

    #[test]
    fn drop_all_loop_mode_weakens_every_seed() {
        let lp = loop_program();
        let pta = pta::analyze(&lp.program, ContextPolicy::Insensitive);
        let modref = ModRef::compute(&lp.program, &pta);
        let cfg = SymexConfig::default().with_loop_mode(LoopMode::DropAll);
        let mut engine = Engine::new(&lp.program, &pta, &modref, cfg);
        let main = lp.program.method(lp.program.entry());
        let (cond, body) = find_while(&main.body).expect("main has a while loop");
        let seed = seed_query(&lp, &pta);
        let out = engine.loop_fixpoint(Some(cond), body, vec![seed]).expect("no fixpoint needed");
        assert_eq!(out.len(), 1, "drop-all maps each seed to exactly one weakening");
        assert!(out[0].heap.iter().all(|c| c.field != lp.val_f));
        assert!(out[0].path.is_empty());
    }

    #[test]
    fn materialization_bound_one_trims_newest_cells_only() {
        let lp = loop_program();
        let pta = pta::analyze(&lp.program, ContextPolicy::Insensitive);
        let modref = ModRef::compute(&lp.program, &pta);
        let mut engine = Engine::new(&lp.program, &pta, &modref, SymexConfig::default());
        let n_loc = loc_of(&pta, lp.n0).index();
        let o_loc = loc_of(&pta, lp.o0).index();

        let mut q = Query::new();
        let owners: Vec<_> = (0..4).map(|_| q.fresh_sym(Region::singleton(n_loc))).collect();
        let val = q.fresh_sym(Region::singleton(o_loc));
        for &obj in &owners {
            q.heap.push(HeapCell { obj, field: lp.val_f, val: Val::Sym(val), idx: None });
        }
        q.heap.push(HeapCell {
            obj: owners[0],
            field: lp.next_f,
            val: Val::Sym(owners[1]),
            idx: None,
        });

        // Seed had one `val` cell; with the paper's bound of 1 the loop may
        // materialize at most one more. The two *newest* cells go.
        let cell_cap = HashMap::from([(lp.val_f, 1)]);
        engine.enforce_cell_cap(&mut q, &cell_cap, 1);
        let val_cells: Vec<_> = q.heap.iter().filter(|c| c.field == lp.val_f).collect();
        assert_eq!(val_cells.len(), 2, "bound 1 allows seed + 1 materialized cell");
        assert_eq!(val_cells[0].obj, owners[0], "oldest cell must survive");
        assert_eq!(val_cells[1].obj, owners[1], "second-oldest cell must survive");
        assert!(
            q.heap.iter().any(|c| c.field == lp.next_f),
            "an un-capped field must not be trimmed"
        );
    }
}
