//! Query-history subsumption (§3.3 "Query Simplification with
//! Disaliasing").
//!
//! The engine keeps a history of queries seen at procedure boundaries; when
//! a new query arrives that entails (is stronger than) a previously explored
//! one, it is dropped — refuting the weaker query refutes the stronger one.
//! Loop heads get the same treatment locally inside
//! [`loop_fixpoint`](crate::engine::Engine).
//!
//! Each stored query is interned with a precomputed [`SubKey`] — compact
//! bitmasks over its local/static/field footprint. Entailment `q ⊨ old`
//! requires every constraint of `old` to be matched in `q`, so
//! `old.key ⊆ q.key` is a *necessary* condition; the key check rejects most
//! non-matches in a few word operations before the structural
//! [`Query::entails`] walk runs.

use std::collections::HashMap;

use tir::MethodId;

use crate::query::Query;

/// A program point at which query histories are kept.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum Point {
    /// The entry of a method, reached by upward propagation.
    MethodEntry(MethodId),
}

/// Interned subsumption key: Bloom-style one-word masks of the query's
/// constraint footprint. For `q.entails(old, _)` to hold, `old`'s locals,
/// statics, and heap fields must each be present in `q`, so
/// `old_key.subset_of(q_key)` is necessary for entailment (never the other
/// way: a set bit only says "some id hashing here is present").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct SubKey {
    locals: u64,
    statics: u64,
    fields: u64,
}

#[inline]
fn mask(index: usize) -> u64 {
    1u64 << (index & 63)
}

impl SubKey {
    /// Computes the key for `q`.
    pub(crate) fn of(q: &Query) -> SubKey {
        let mut key = SubKey::default();
        for var in q.locals.keys() {
            key.locals |= mask(var.index());
        }
        for g in q.statics.keys() {
            key.statics |= mask(g.index());
        }
        for cell in &q.heap {
            key.fields |= mask(cell.field.index());
        }
        key
    }

    /// True when every footprint bit of `self` is present in `other` — the
    /// necessary condition for a query with key `other` to entail one with
    /// key `self`.
    #[inline]
    pub(crate) fn subset_of(&self, other: &SubKey) -> bool {
        self.locals & !other.locals == 0
            && self.statics & !other.statics == 0
            && self.fields & !other.fields == 0
    }
}

/// Bounded per-point query history.
#[derive(Debug, Default)]
pub(crate) struct History {
    map: HashMap<Point, Vec<(SubKey, Query)>>,
}

/// Cap on stored queries per point; beyond it the oldest entries rotate
/// out (bounding memory at a small precision cost).
const PER_POINT_CAP: usize = 64;

impl History {
    pub(crate) fn new() -> Self {
        History::default()
    }

    /// Forgets everything (called between edges).
    pub(crate) fn clear(&mut self) {
        self.map.clear();
    }

    /// True if a weaker-or-equal query was already explored at `point`.
    pub(crate) fn subsumes_at(&self, point: Point, q: &Query, strict: bool) -> bool {
        let Some(entries) = self.map.get(&point) else { return false };
        let key = SubKey::of(q);
        entries.iter().any(|(old_key, old)| old_key.subset_of(&key) && q.entails(old, strict))
    }

    /// Records `q` at `point`.
    pub(crate) fn insert(&mut self, point: Point, q: Query) {
        let qs = self.map.entry(point).or_default();
        if qs.len() >= PER_POINT_CAP {
            qs.remove(0);
        }
        let key = SubKey::of(&q);
        qs.push((key, q));
    }

    /// Number of queries stored at `point` (test support).
    #[cfg(test)]
    fn len_at(&self, point: Point) -> usize {
        self.map.get(&point).map(Vec::len).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use crate::region::Region;
    use crate::value::Val;
    use tir::VarId;

    #[test]
    fn identical_query_is_subsumed() {
        let mut h = History::new();
        let mut q = Query::new();
        let s = q.fresh_sym(Region::singleton(1));
        q.locals.insert(VarId(0), Val::Sym(s));
        let p = Point::MethodEntry(MethodId(0));
        assert!(!h.subsumes_at(p, &q, false));
        h.insert(p, q.clone());
        assert!(h.subsumes_at(p, &q, false));
    }

    #[test]
    fn stronger_query_is_subsumed_weaker_is_not() {
        let mut h = History::new();
        let p = Point::MethodEntry(MethodId(0));
        let mut weak = Query::new();
        let s = weak.fresh_sym(Region::locs([1, 2].into_iter().collect()));
        weak.locals.insert(VarId(0), Val::Sym(s));
        h.insert(p, weak.clone());

        let mut strong = Query::new();
        let t = strong.fresh_sym(Region::singleton(1));
        strong.locals.insert(VarId(0), Val::Sym(t));
        assert!(h.subsumes_at(p, &strong, false));
        // Strict (fully symbolic) region comparison disables the subset
        // check.
        assert!(!h.subsumes_at(p, &strong, true));

        let mut h2 = History::new();
        h2.insert(p, strong);
        assert!(!h2.subsumes_at(p, &weak, false));
    }

    #[test]
    fn per_point_cap_rotates() {
        let mut h = History::new();
        let p = Point::MethodEntry(MethodId(0));
        for i in 0..(PER_POINT_CAP + 10) {
            let mut q = Query::new();
            let s = q.fresh_sym(Region::singleton(i));
            q.locals.insert(VarId(0), Val::Sym(s));
            h.insert(p, q);
        }
        assert_eq!(h.len_at(p), PER_POINT_CAP);
    }

    #[test]
    fn clear_empties() {
        let mut h = History::new();
        let p = Point::MethodEntry(MethodId(1));
        h.insert(p, Query::new());
        h.clear();
        assert!(!h.subsumes_at(p, &Query::new(), false));
    }

    #[test]
    fn subkey_subset_tracks_footprint() {
        let mut small = Query::new();
        let s = small.fresh_sym(Region::singleton(1));
        small.locals.insert(VarId(0), Val::Sym(s));

        let mut big = small.clone();
        let t = big.fresh_sym(Region::singleton(2));
        big.locals.insert(VarId(1), Val::Sym(t));

        let ks = SubKey::of(&small);
        let kb = SubKey::of(&big);
        assert!(ks.subset_of(&kb));
        assert!(!kb.subset_of(&ks));
        // The key filter is only a necessary condition, so the reject
        // direction must be exact: `big` has a local `small` lacks.
        assert!(!small.entails(&big, false));
    }
}
