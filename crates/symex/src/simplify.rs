//! Query-history subsumption (§3.3 "Query Simplification with
//! Disaliasing").
//!
//! The engine keeps a history of queries seen at procedure boundaries; when
//! a new query arrives that entails (is stronger than) a previously explored
//! one, it is dropped — refuting the weaker query refutes the stronger one.
//! Loop heads get the same treatment locally inside
//! [`loop_fixpoint`](crate::engine::Engine).

use std::collections::HashMap;

use tir::MethodId;

use crate::query::Query;

/// A program point at which query histories are kept.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum Point {
    /// The entry of a method, reached by upward propagation.
    MethodEntry(MethodId),
}

/// Bounded per-point query history.
#[derive(Debug, Default)]
pub(crate) struct History {
    map: HashMap<Point, Vec<Query>>,
}

/// Cap on stored queries per point; beyond it the oldest entries rotate
/// out (bounding memory at a small precision cost).
const PER_POINT_CAP: usize = 64;

impl History {
    pub(crate) fn new() -> Self {
        History::default()
    }

    /// Forgets everything (called between edges).
    pub(crate) fn clear(&mut self) {
        self.map.clear();
    }

    /// True if a weaker-or-equal query was already explored at `point`.
    pub(crate) fn subsumes_at(&self, point: Point, q: &Query, strict: bool) -> bool {
        self.map.get(&point).map(|qs| qs.iter().any(|old| q.entails(old, strict))).unwrap_or(false)
    }

    /// Records `q` at `point`.
    pub(crate) fn insert(&mut self, point: Point, q: Query) {
        let qs = self.map.entry(point).or_default();
        if qs.len() >= PER_POINT_CAP {
            qs.remove(0);
        }
        qs.push(q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use crate::region::Region;
    use crate::value::Val;
    use tir::VarId;

    #[test]
    fn identical_query_is_subsumed() {
        let mut h = History::new();
        let mut q = Query::new();
        let s = q.fresh_sym(Region::singleton(1));
        q.locals.insert(VarId(0), Val::Sym(s));
        let p = Point::MethodEntry(MethodId(0));
        assert!(!h.subsumes_at(p, &q, false));
        h.insert(p, q.clone());
        assert!(h.subsumes_at(p, &q, false));
    }

    #[test]
    fn stronger_query_is_subsumed_weaker_is_not() {
        let mut h = History::new();
        let p = Point::MethodEntry(MethodId(0));
        let mut weak = Query::new();
        let s = weak.fresh_sym(Region::locs([1, 2].into_iter().collect()));
        weak.locals.insert(VarId(0), Val::Sym(s));
        h.insert(p, weak.clone());

        let mut strong = Query::new();
        let t = strong.fresh_sym(Region::singleton(1));
        strong.locals.insert(VarId(0), Val::Sym(t));
        assert!(h.subsumes_at(p, &strong, false));
        // Strict (fully symbolic) region comparison disables the subset
        // check.
        assert!(!h.subsumes_at(p, &strong, true));

        let mut h2 = History::new();
        h2.insert(p, strong);
        assert!(!h2.subsumes_at(p, &weak, false));
    }

    #[test]
    fn per_point_cap_rotates() {
        let mut h = History::new();
        let p = Point::MethodEntry(MethodId(0));
        for i in 0..(PER_POINT_CAP + 10) {
            let mut q = Query::new();
            let s = q.fresh_sym(Region::singleton(i));
            q.locals.insert(VarId(0), Val::Sym(s));
            h.insert(p, q);
        }
        assert_eq!(h.map[&p].len(), PER_POINT_CAP);
    }

    #[test]
    fn clear_empties() {
        let mut h = History::new();
        let p = Point::MethodEntry(MethodId(1));
        h.insert(p, Query::new());
        h.clear();
        assert!(!h.subsumes_at(p, &Query::new(), false));
    }
}
