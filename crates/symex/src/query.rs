//! Mixed symbolic-explicit queries (§2.1, §3.1).
//!
//! A [`Query`] is one conjunctive candidate witness: exact points-to
//! constraints on locals, globals, and heap cells (a bounded separation-logic
//! fragment — distinct cells are separated by `*`), `from` instance
//! constraints tying each symbolic value to a points-to region, and pure
//! integer constraints split into *internal* equalities and capped *path*
//! conditions.

use std::collections::BTreeMap;

use pta::BitSet;
use solver::{Atom, ConstraintSet, Term};
use tir::{CmdId, FieldId, GlobalId, VarId};

use crate::region::Region;
use crate::value::{SymId, Val};

/// Raised when a query transfer discovers a contradiction; the enclosing
/// path program is pruned. The variants drive the refutation statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Refuted {
    /// A `from` region became empty (axiom 1 of §3.2).
    EmptyRegion,
    /// Separation: one memory cell would need two distinct values.
    Separation,
    /// The pure/path constraints became unsatisfiable.
    Pure,
    /// A constraint mentioned an instance before its allocation site.
    Allocation,
    /// Constraints survived to the program entry, where the heap is empty.
    Entry,
}

impl std::fmt::Display for Refuted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Refuted::EmptyRegion => "empty instance region",
            Refuted::Separation => "separation contradiction",
            Refuted::Pure => "unsatisfiable pure constraints",
            Refuted::Allocation => "instance constrained before allocation",
            Refuted::Entry => "constraints unsatisfiable at program entry",
        };
        f.write_str(s)
    }
}

/// One exact heap points-to constraint `v̂·f ↦ û` (with an optional symbolic
/// array index for `contents` cells).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeapCell {
    /// The owning instance.
    pub obj: SymId,
    /// The field.
    pub field: FieldId,
    /// The stored value.
    pub val: Val,
    /// For array `contents` cells: the element index.
    pub idx: Option<Val>,
}

/// A conjunctive candidate witness (see the module-level documentation).
#[derive(Clone, Debug, Default)]
pub struct Query {
    /// Exact points-to constraints on locals: `x ↦ v`.
    pub locals: BTreeMap<VarId, Val>,
    /// Exact points-to constraints on globals: `$G ↦ v`.
    pub statics: BTreeMap<GlobalId, Val>,
    /// Exact heap constraints, implicitly `*`-separated.
    pub heap: Vec<HeapCell>,
    /// `from` instance constraints per symbolic value.
    regions: BTreeMap<SymId, Region>,
    /// Internal pure constraints (value equalities, array index relations).
    pub pure: ConstraintSet,
    /// Path conditions gathered from guards; capped by the engine.
    pub path: ConstraintSet,
    /// Pending return-value constraint while entering a callee backwards:
    /// consumed by the callee's trailing `return` transfer.
    pub ret_slot: Option<Val>,
    next_sym: u32,
    /// Commands traversed by this path program, most recent first.
    pub trace: Vec<CmdId>,
}

impl Query {
    /// An empty query (the `any` memory — trivially witnessed).
    pub fn new() -> Query {
        Query::default()
    }

    /// Allocates a fresh symbolic value constrained to `region`.
    pub fn fresh_sym(&mut self, region: Region) -> SymId {
        let id = SymId(self.next_sym);
        self.next_sym += 1;
        self.regions.insert(id, region);
        id
    }

    /// A watermark: all symbolic values created after this call have ids
    /// `>=` the returned mark (unification keeps the smaller id as the
    /// representative, so merged values stay below their original marks).
    pub fn sym_mark(&self) -> u32 {
        self.next_sym
    }

    /// Drops pure and path atoms that mention any symbolic value created at
    /// or after `mark` — the loop-widening weakening: constraints derived
    /// during loop analysis are discarded, constraints about loop-invariant
    /// values survive.
    pub fn drop_atoms_since(&mut self, mark: u32) {
        let keep = |a: &Atom| a.syms().all(|s| s < mark);
        self.pure.retain(keep);
        self.path.retain(keep);
    }

    /// The `from` region of `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is unknown to this query.
    pub fn region(&self, s: SymId) -> &Region {
        self.regions.get(&s).expect("unknown symbolic value")
    }

    /// All symbolic values with their regions.
    pub fn regions(&self) -> impl Iterator<Item = (SymId, &Region)> {
        self.regions.iter().map(|(&s, r)| (s, r))
    }

    /// Narrows the region of `s` by intersection with `locs`.
    ///
    /// # Errors
    ///
    /// Returns [`Refuted::EmptyRegion`] if the intersection is empty — the
    /// eager contradiction at the heart of the mixed representation (§2.2).
    pub fn narrow(&mut self, s: SymId, locs: &BitSet) -> Result<(), Refuted> {
        let r = self.regions.get_mut(&s).expect("unknown symbolic value");
        // Fast path: already at least as narrow (no allocation).
        if let Region::Locs(cur) = r {
            if cur.is_subset(locs) {
                return if cur.is_empty() { Err(Refuted::EmptyRegion) } else { Ok(()) };
            }
        }
        let narrowed = r.intersect_locs(locs);
        if narrowed.is_empty() {
            return Err(Refuted::EmptyRegion);
        }
        *r = narrowed;
        Ok(())
    }

    /// Unifies two values, merging symbolic variables (intersecting their
    /// regions) and substituting throughout the query.
    ///
    /// # Errors
    ///
    /// Returns a [`Refuted`] reason when the values cannot be equal: a
    /// symbolic instance against `null`, clashing constants, disjoint
    /// regions, or a resulting separation/pure contradiction.
    pub fn unify(&mut self, a: Val, b: Val) -> Result<(), Refuted> {
        match (a, b) {
            (Val::Null, Val::Null) => Ok(()),
            (Val::Int(x), Val::Int(y)) => {
                if x == y {
                    Ok(())
                } else {
                    Err(Refuted::Pure)
                }
            }
            (Val::Null, Val::Int(_)) | (Val::Int(_), Val::Null) => Err(Refuted::Pure),
            (Val::Sym(s), Val::Null) | (Val::Null, Val::Sym(s)) => {
                // A symbolic value denotes a concrete instance or integer —
                // never null.
                let _ = s;
                Err(Refuted::Separation)
            }
            (Val::Sym(s), Val::Int(c)) | (Val::Int(c), Val::Sym(s)) => {
                match self.region(s) {
                    Region::Data => {}
                    Region::Locs(_) => return Err(Refuted::EmptyRegion),
                }
                self.add_pure(tir::CmpOp::Eq, Term::sym(s.0), Term::int(c))
            }
            (Val::Sym(s1), Val::Sym(s2)) => {
                if s1 == s2 {
                    return Ok(());
                }
                let (rep, gone) = if s1 < s2 { (s1, s2) } else { (s2, s1) };
                let r1 = self.regions.remove(&gone).expect("unknown symbolic value");
                let r0 = self.regions.get_mut(&rep).expect("unknown symbolic value");
                let merged = r0.intersect(&r1);
                if merged.is_empty() {
                    return Err(Refuted::EmptyRegion);
                }
                *r0 = merged;
                self.substitute(gone, rep)?;
                Ok(())
            }
        }
    }

    /// Replaces every occurrence of `gone` with `rep`, then re-establishes
    /// the one-value-per-cell invariant of the heap.
    fn substitute(&mut self, gone: SymId, rep: SymId) -> Result<(), Refuted> {
        let subst = |v: Val| v.map_sym(|s| if s == gone { rep } else { s });
        if let Some(r) = self.ret_slot {
            self.ret_slot = Some(subst(r));
        }
        for v in self.locals.values_mut() {
            *v = subst(*v);
        }
        for v in self.statics.values_mut() {
            *v = subst(*v);
        }
        for cell in &mut self.heap {
            if cell.obj == gone {
                cell.obj = rep;
            }
            cell.val = subst(cell.val);
            cell.idx = cell.idx.map(subst);
        }
        let map_atom = |a: &Atom| Atom {
            op: a.op,
            lhs: a.lhs.map_sym(|s| if s == gone.0 { rep.0 } else { s }),
            rhs: a.rhs.map_sym(|s| if s == gone.0 { rep.0 } else { s }),
        };
        self.pure = self.pure.atoms().iter().map(map_atom).collect();
        self.path = self.path.atoms().iter().map(map_atom).collect();
        if !self.pure_sat() {
            return Err(Refuted::Pure);
        }
        self.dedupe_cells()
    }

    /// Merges heap cells that now name the same memory cell. Two non-array
    /// cells with the same `(obj, field)` are one concrete cell, so their
    /// values unify; array cells are merged only when their indices are
    /// syntactically equal (otherwise they may address distinct elements).
    fn dedupe_cells(&mut self) -> Result<(), Refuted> {
        loop {
            let mut pair: Option<(usize, usize)> = None;
            'outer: for i in 0..self.heap.len() {
                for j in (i + 1)..self.heap.len() {
                    let (a, b) = (&self.heap[i], &self.heap[j]);
                    if a.obj == b.obj && a.field == b.field {
                        match (&a.idx, &b.idx) {
                            (None, None) => {
                                pair = Some((i, j));
                                break 'outer;
                            }
                            (Some(x), Some(y)) if x == y => {
                                pair = Some((i, j));
                                break 'outer;
                            }
                            _ => {}
                        }
                    }
                }
            }
            let Some((i, j)) = pair else { return Ok(()) };
            let b = self.heap.remove(j);
            let a_val = self.heap[i].val;
            self.unify(a_val, b.val)?;
        }
    }

    /// True if the pure and path constraints are jointly satisfiable.
    /// Solver failures are absorbed as "satisfiable" (refutation-sound);
    /// use [`Query::try_pure_sat`] to surface them.
    pub fn pure_sat(&self) -> bool {
        self.try_pure_sat().unwrap_or(true)
    }

    /// True if the pure and path constraints are jointly satisfiable,
    /// reporting solver failures (overflow, oversized sets) to the caller.
    pub fn try_pure_sat(&self) -> Result<bool, solver::SolverError> {
        if self.path.is_empty() {
            return self.pure.try_is_sat();
        }
        let mut all = self.pure.clone();
        for a in self.path.atoms() {
            all.add_atom(*a);
        }
        all.try_is_sat()
    }

    /// The combined pure+path constraint set.
    pub fn all_pure(&self) -> ConstraintSet {
        let mut all = self.pure.clone();
        for a in self.path.atoms() {
            all.add_atom(*a);
        }
        all
    }

    /// Adds an internal pure atom (value equality, index relation),
    /// evicting the oldest atoms beyond a fixed cap — a sound weakening
    /// that keeps the solver's constraint graphs small.
    ///
    /// # Errors
    ///
    /// Returns [`Refuted::Pure`] if the constraints become unsatisfiable.
    pub fn add_pure(&mut self, op: tir::CmpOp, lhs: Term, rhs: Term) -> Result<(), Refuted> {
        const INTERNAL_PURE_CAP: usize = 32;
        self.pure.add(op, lhs, rhs);
        while self.pure.len() > INTERNAL_PURE_CAP {
            let atoms: Vec<Atom> = self.pure.atoms()[1..].to_vec();
            self.pure = atoms.into_iter().collect();
        }
        if !self.pure_sat() {
            return Err(Refuted::Pure);
        }
        Ok(())
    }

    /// Adds a path-condition atom, evicting atoms beyond `cap` (a sound
    /// weakening; §4 caps the set at two). Eviction prefers atoms whose
    /// symbols are not tied to any heap or static constraint — transient
    /// guard conditions — keeping memory-anchored conditions like the
    /// `sz < cap` constraint of Figure 1 alive longest.
    ///
    /// # Errors
    ///
    /// Returns [`Refuted::Pure`] if the constraints become unsatisfiable.
    pub fn add_path_atom(&mut self, atom: Atom, cap: usize) -> Result<(), Refuted> {
        self.path.add_atom(atom);
        while self.path.len() > cap {
            // Symbols anchored in memory constraints.
            let mut anchored: BitSet = BitSet::new();
            for c in &self.heap {
                anchored.insert(c.obj.index());
                if let Val::Sym(s) = c.val {
                    anchored.insert(s.index());
                }
                if let Some(Val::Sym(s)) = c.idx {
                    anchored.insert(s.index());
                }
            }
            for v in self.statics.values() {
                if let Val::Sym(s) = v {
                    anchored.insert(s.index());
                }
            }
            let atoms: Vec<Atom> = self.path.atoms().to_vec();
            // Never evict the just-added atom (its symbols become anchored
            // only once the reads feeding the guard are processed).
            let victim = atoms[..atoms.len() - 1]
                .iter()
                .position(|a| a.syms().all(|s| !anchored.contains(s as usize)))
                .unwrap_or(0);
            let remaining: Vec<Atom> = atoms
                .into_iter()
                .enumerate()
                .filter(|(i, _)| *i != victim)
                .map(|(_, a)| a)
                .collect();
            self.path = remaining.into_iter().collect();
        }
        if !self.pure_sat() {
            return Err(Refuted::Pure);
        }
        Ok(())
    }

    /// Record a traversed command in the path-program trace.
    pub fn record(&mut self, cmd: CmdId, cap: usize) {
        if self.trace.len() < cap {
            self.trace.push(cmd);
        }
    }

    /// Fields mentioned by heap constraints (query footprint, for mod/ref
    /// relevance checks).
    pub fn field_footprint(&self) -> BitSet {
        self.heap.iter().map(|c| c.field.index()).collect()
    }

    /// Globals mentioned by static constraints.
    pub fn global_footprint(&self) -> BitSet {
        self.statics.keys().map(|g| g.index()).collect()
    }

    /// True if no memory constraints remain — the query is the `any` memory
    /// and the path program is a *full witness*, provided the pure
    /// constraints are satisfiable.
    pub fn is_discharged(&self) -> bool {
        self.locals.is_empty() && self.statics.is_empty() && self.heap.is_empty()
    }

    /// Checks the query against the initial program state (empty heap, all
    /// globals null, locals zero-initialized).
    ///
    /// # Errors
    ///
    /// Returns [`Refuted::Entry`] if any constraint demands a non-default
    /// value at entry: no object exists yet (so every heap cell and every
    /// binding to a location-region symbol is contradictory), and all
    /// integer values are zero.
    pub fn check_at_entry(&self) -> Result<(), Refuted> {
        if !self.heap.is_empty() {
            return Err(Refuted::Entry);
        }
        let mut pure = self.all_pure();
        let mut check_default = |v: &Val, regions: &BTreeMap<SymId, Region>| match v {
            Val::Null | Val::Int(0) => Ok(()),
            Val::Int(_) => Err(Refuted::Entry),
            Val::Sym(s) => match regions.get(s) {
                Some(Region::Data) => {
                    pure.add(tir::CmpOp::Eq, Term::sym(s.0), Term::int(0));
                    Ok(())
                }
                _ => Err(Refuted::Entry),
            },
        };
        for v in self.locals.values() {
            check_default(v, &self.regions)?;
        }
        for v in self.statics.values() {
            check_default(v, &self.regions)?;
        }
        let _ = &check_default;
        if !pure.is_sat() {
            return Err(Refuted::Entry);
        }
        Ok(())
    }

    /// Drops pure/path atoms that mention no symbolic value reachable from
    /// the structural constraints (a sound weakening that keeps queries
    /// comparable), and garbage-collects unused regions.
    pub fn gc(&mut self) {
        let mut live: BitSet = BitSet::new();
        let mut mark = |v: &Val| {
            if let Val::Sym(s) = v {
                live.insert(s.index());
            }
        };
        for v in self.locals.values() {
            mark(v);
        }
        if let Some(r) = &self.ret_slot {
            mark(r);
        }
        for v in self.statics.values() {
            mark(v);
        }
        for c in &self.heap {
            mark(&Val::Sym(c.obj));
            mark(&c.val);
            if let Some(i) = &c.idx {
                mark(i);
            }
        }
        let _ = &mark;
        // Close over pure atoms: an atom linking a live sym keeps its other
        // sym live.
        let all_atoms: Vec<Atom> =
            self.pure.atoms().iter().chain(self.path.atoms()).copied().collect();
        let mut changed = true;
        while changed {
            changed = false;
            for a in &all_atoms {
                let syms: Vec<u32> = a.syms().collect();
                if syms.iter().any(|&s| live.contains(s as usize)) {
                    for &s in &syms {
                        changed |= live.insert(s as usize);
                    }
                }
            }
        }
        let keep = |a: &Atom| {
            let syms: Vec<u32> = a.syms().collect();
            syms.is_empty() || syms.iter().any(|&s| live.contains(s as usize))
        };
        self.pure.retain(keep);
        self.path.retain(keep);

        // Vacuous-definition elimination: an atom containing a symbol that
        // is not structural and occurs in no other atom is existentially
        // trivial (the symbol can always be chosen to satisfy it — the
        // integers are unbounded), so it constrains nothing. Dropping it is
        // a no-loss weakening that keeps queries canonical for subsumption.
        let mut structural: BitSet = BitSet::new();
        let mut mark2 = |v: &Val| {
            if let Val::Sym(s) = v {
                structural.insert(s.index());
            }
        };
        for v in self.locals.values() {
            mark2(v);
        }
        if let Some(r) = &self.ret_slot {
            mark2(r);
        }
        for v in self.statics.values() {
            mark2(v);
        }
        for c in &self.heap {
            mark2(&Val::Sym(c.obj));
            mark2(&c.val);
            if let Some(i) = &c.idx {
                mark2(i);
            }
        }
        let _ = &mark2;
        loop {
            let mut occurrences: std::collections::HashMap<u32, usize> =
                std::collections::HashMap::new();
            for a in self.pure.atoms().iter().chain(self.path.atoms()) {
                for s in a.syms() {
                    *occurrences.entry(s).or_insert(0) += 1;
                }
            }
            let vacuous = |a: &Atom| {
                a.syms()
                    .any(|s| !structural.contains(s as usize) && occurrences.get(&s) == Some(&1))
            };
            let before = self.pure.len() + self.path.len();
            self.pure.retain(|a| !vacuous(a));
            self.path.retain(|a| !vacuous(a));
            if self.pure.len() + self.path.len() == before {
                break;
            }
        }
        let mut final_live = structural;
        for a in self.pure.atoms().iter().chain(self.path.atoms()) {
            for s in a.syms() {
                final_live.insert(s as usize);
            }
        }
        self.regions.retain(|s, _| final_live.contains(s.index()));
    }

    /// True if both queries carry exactly the same constraints (ignoring
    /// the recorded trace). Used to detect branches that did not touch the
    /// query, in which case guard constraints are skipped (§3.2: path
    /// constraints are added "only when the queries on each side of the
    /// branch are different").
    pub fn same_constraints(&self, other: &Query) -> bool {
        self.locals == other.locals
            && self.statics == other.statics
            && self.heap == other.heap
            && self.regions == other.regions
            && self.pure == other.pure
            && self.path == other.path
            && self.ret_slot == other.ret_slot
    }

    /// Structural entailment `self |= other` (self is stronger): used for
    /// query-history subsumption (§3.3). With `strict_regions` (the
    /// fully-symbolic ablation) region comparison requires equality instead
    /// of the Equation (§) subset check.
    ///
    /// Conservative: may return `false` for semantically entailed queries,
    /// never `true` for non-entailed ones.
    pub fn entails(&self, other: &Query, strict_regions: bool) -> bool {
        // Histories are only consulted at points where no return binding is
        // pending; bail out conservatively otherwise.
        if self.ret_slot.is_some() || other.ret_slot.is_some() {
            return false;
        }
        let mut map: BTreeMap<SymId, SymId> = BTreeMap::new();
        let match_val =
            |q: &Query, map: &mut BTreeMap<SymId, SymId>, mine: Val, theirs: Val| -> bool {
                match (mine, theirs) {
                    (Val::Sym(a), Val::Sym(b)) => {
                        if let Some(&m) = map.get(&b) {
                            return m == a;
                        }
                        let ok = if strict_regions {
                            q.region(a) == other.region(b)
                        } else {
                            q.region(a).is_subset(other.region(b))
                        };
                        if ok {
                            map.insert(b, a);
                        }
                        ok
                    }
                    (Val::Null, Val::Null) => true,
                    (Val::Int(x), Val::Int(y)) => x == y,
                    _ => false,
                }
            };

        for (var, &theirs) in &other.locals {
            let Some(&mine) = self.locals.get(var) else { return false };
            if !match_val(self, &mut map, mine, theirs) {
                return false;
            }
        }
        for (g, &theirs) in &other.statics {
            let Some(&mine) = self.statics.get(g) else { return false };
            if !match_val(self, &mut map, mine, theirs) {
                return false;
            }
        }
        // Greedy cell matching with used-set (cells are few).
        let mut used = vec![false; self.heap.len()];
        for cell in &other.heap {
            let mut found = false;
            for (i, mine) in self.heap.iter().enumerate() {
                if used[i] || mine.field != cell.field {
                    continue;
                }
                let mut trial = map.clone();
                if !match_val(self, &mut trial, Val::Sym(mine.obj), Val::Sym(cell.obj)) {
                    continue;
                }
                if !match_val(self, &mut trial, mine.val, cell.val) {
                    continue;
                }
                match (&mine.idx, &cell.idx) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        if !match_val(self, &mut trial, *a, *b) {
                            continue;
                        }
                    }
                    _ => continue,
                }
                map = trial;
                used[i] = true;
                found = true;
                break;
            }
            if !found {
                return false;
            }
        }
        // Pure entailment on mapped atoms (sets built lazily: most queries
        // carry no pure atoms at subsumption points).
        if other.pure.is_empty() && other.path.is_empty() {
            return true;
        }
        let mine_all = self.all_pure();
        for atom in other.pure.atoms().iter().chain(other.path.atoms()) {
            let mut unmapped = false;
            let mapped = Atom {
                op: atom.op,
                lhs: atom.lhs.map_sym(|s| match map.get(&SymId(s)) {
                    Some(m) => m.0,
                    None => {
                        unmapped = true;
                        s
                    }
                }),
                rhs: atom.rhs.map_sym(|s| match map.get(&SymId(s)) {
                    Some(m) => m.0,
                    None => {
                        unmapped = true;
                        s
                    }
                }),
            };
            if unmapped || !mine_all.implies(&mapped) {
                return false;
            }
        }
        true
    }

    /// Renders the query for diagnostics, e.g.
    /// `x -> v0 * v0.f -> v1 . v0 from {3} . v1 from {5}`.
    pub fn describe(&self, program: &tir::Program) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let val = |v: &Val| match v {
            Val::Sym(s) => format!("{s}"),
            Val::Null => "null".to_owned(),
            Val::Int(i) => i.to_string(),
        };
        for (x, v) in &self.locals {
            let _ = write!(out, "{} -> {} * ", program.var(*x).name, val(v));
        }
        for (g, v) in &self.statics {
            let _ = write!(out, "${} -> {} * ", program.global(*g).name, val(v));
        }
        for c in &self.heap {
            match &c.idx {
                Some(i) => {
                    let _ = write!(
                        out,
                        "{}.{}[{}] -> {} * ",
                        c.obj,
                        program.field(c.field).name,
                        val(i),
                        val(&c.val)
                    );
                }
                None => {
                    let _ = write!(
                        out,
                        "{}.{} -> {} * ",
                        c.obj,
                        program.field(c.field).name,
                        val(&c.val)
                    );
                }
            }
        }
        if out.ends_with(" * ") {
            out.truncate(out.len() - 3);
        }
        if out.is_empty() {
            out.push_str("any");
        }
        for (s, r) in &self.regions {
            match r {
                Region::Locs(set) => {
                    let _ = write!(out, " . {s} from {set:?}");
                }
                Region::Data => {
                    let _ = write!(out, " . {s} from data");
                }
            }
        }
        for a in self.pure.atoms().iter().chain(self.path.atoms()) {
            let _ = write!(out, " . {:?} {} {:?}", a.lhs, a.op.symbol(), a.rhs);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tir::CmpOp;

    fn locs(bits: &[usize]) -> Region {
        Region::locs(bits.iter().copied().collect())
    }

    #[test]
    fn narrow_refutes_on_empty() {
        let mut q = Query::new();
        let s = q.fresh_sym(locs(&[1, 2]));
        assert!(q.narrow(s, &[2, 3].into_iter().collect()).is_ok());
        assert_eq!(q.narrow(s, &[4].into_iter().collect()), Err(Refuted::EmptyRegion));
    }

    #[test]
    fn unify_merges_regions() {
        let mut q = Query::new();
        let a = q.fresh_sym(locs(&[1, 2]));
        let b = q.fresh_sym(locs(&[2, 3]));
        q.unify(Val::Sym(a), Val::Sym(b)).expect("unify");
        assert_eq!(q.region(a).as_locs().unwrap().iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn unify_disjoint_regions_refutes() {
        let mut q = Query::new();
        let a = q.fresh_sym(locs(&[1]));
        let b = q.fresh_sym(locs(&[2]));
        assert_eq!(q.unify(Val::Sym(a), Val::Sym(b)), Err(Refuted::EmptyRegion));
    }

    #[test]
    fn unify_sym_with_null_refutes() {
        let mut q = Query::new();
        let a = q.fresh_sym(locs(&[1]));
        assert_eq!(q.unify(Val::Sym(a), Val::Null), Err(Refuted::Separation));
    }

    #[test]
    fn unify_substitutes_in_heap_and_dedupes() {
        let mut q = Query::new();
        let o1 = q.fresh_sym(locs(&[1, 2]));
        let o2 = q.fresh_sym(locs(&[2, 3]));
        let v1 = q.fresh_sym(locs(&[5]));
        let v2 = q.fresh_sym(locs(&[5, 6]));
        let f = FieldId(0);
        q.heap.push(HeapCell { obj: o1, field: f, val: Val::Sym(v1), idx: None });
        q.heap.push(HeapCell { obj: o2, field: f, val: Val::Sym(v2), idx: None });
        // Unifying the owners forces the cell values to unify too.
        q.unify(Val::Sym(o1), Val::Sym(o2)).expect("unify");
        assert_eq!(q.heap.len(), 1);
        let cell = &q.heap[0];
        assert_eq!(q.region(cell.val.sym().unwrap()).as_locs().unwrap().len(), 1);
    }

    #[test]
    fn unify_separation_via_cell_values() {
        let mut q = Query::new();
        let o1 = q.fresh_sym(locs(&[1, 2]));
        let o2 = q.fresh_sym(locs(&[2, 3]));
        let f = FieldId(0);
        q.heap.push(HeapCell { obj: o1, field: f, val: Val::Null, idx: None });
        let v = q.fresh_sym(locs(&[5]));
        q.heap.push(HeapCell { obj: o2, field: f, val: Val::Sym(v), idx: None });
        // Same cell cannot hold both null and an instance.
        assert!(q.unify(Val::Sym(o1), Val::Sym(o2)).is_err());
    }

    #[test]
    fn array_cells_with_distinct_indices_coexist() {
        let mut q = Query::new();
        let o = q.fresh_sym(locs(&[1]));
        let i1 = q.fresh_sym(Region::Data);
        let i2 = q.fresh_sym(Region::Data);
        let f = FieldId(0);
        q.heap.push(HeapCell { obj: o, field: f, val: Val::Null, idx: Some(Val::Sym(i1)) });
        let v = q.fresh_sym(locs(&[5]));
        q.heap.push(HeapCell { obj: o, field: f, val: Val::Sym(v), idx: Some(Val::Sym(i2)) });
        assert!(q.dedupe_cells().is_ok());
        assert_eq!(q.heap.len(), 2);
    }

    #[test]
    fn int_unification_constrains_data_syms() {
        let mut q = Query::new();
        let s = q.fresh_sym(Region::Data);
        q.unify(Val::Sym(s), Val::Int(3)).expect("unify");
        assert!(q.pure_sat());
        assert_eq!(q.unify(Val::Sym(s), Val::Int(4)), Err(Refuted::Pure));
    }

    #[test]
    fn path_atom_cap_evicts_oldest() {
        let mut q = Query::new();
        let a = q.fresh_sym(Region::Data);
        let b = q.fresh_sym(Region::Data);
        let c = q.fresh_sym(Region::Data);
        q.add_path_atom(Atom::new(CmpOp::Lt, Term::sym(a.0), Term::int(0)), 2).unwrap();
        q.add_path_atom(Atom::new(CmpOp::Lt, Term::sym(b.0), Term::int(0)), 2).unwrap();
        q.add_path_atom(Atom::new(CmpOp::Lt, Term::sym(c.0), Term::int(0)), 2).unwrap();
        assert_eq!(q.path.len(), 2);
        // The oldest (about `a`) was dropped.
        assert!(q.path.atoms().iter().all(|at| at.syms().all(|s| s != a.0)));
    }

    #[test]
    fn entry_check_accepts_defaults_only() {
        let mut q = Query::new();
        assert!(q.check_at_entry().is_ok());
        q.locals.insert(VarId(0), Val::Null);
        q.locals.insert(VarId(1), Val::Int(0));
        assert!(q.check_at_entry().is_ok());
        let s = q.fresh_sym(locs(&[1]));
        q.locals.insert(VarId(2), Val::Sym(s));
        assert_eq!(q.check_at_entry(), Err(Refuted::Entry));
    }

    #[test]
    fn entry_check_rejects_heap() {
        let mut q = Query::new();
        let o = q.fresh_sym(locs(&[1]));
        q.heap.push(HeapCell { obj: o, field: FieldId(0), val: Val::Null, idx: None });
        assert_eq!(q.check_at_entry(), Err(Refuted::Entry));
    }

    #[test]
    fn gc_drops_unreachable_atoms() {
        let mut q = Query::new();
        let live = q.fresh_sym(locs(&[1]));
        q.locals.insert(VarId(0), Val::Sym(live));
        let dead = q.fresh_sym(Region::Data);
        let chained = q.fresh_sym(Region::Data);
        q.pure.add(CmpOp::Eq, Term::sym(dead.0), Term::sym(chained.0));
        q.gc();
        assert!(q.pure.is_empty());
        assert!(!q.regions.contains_key(&dead));
        assert!(q.regions.contains_key(&live));
    }

    #[test]
    fn gc_keeps_atom_chains_reaching_structure() {
        let mut q = Query::new();
        let live = q.fresh_sym(Region::Data);
        let o = q.fresh_sym(locs(&[1]));
        q.heap.push(HeapCell { obj: o, field: FieldId(0), val: Val::Sym(live), idx: None });
        let mid = q.fresh_sym(Region::Data);
        q.pure.add(CmpOp::Eq, Term::sym(live.0), Term::sym(mid.0));
        q.pure.add(CmpOp::Eq, Term::sym(mid.0), Term::int(5));
        q.gc();
        assert_eq!(q.pure.len(), 2);
    }

    #[test]
    fn entails_weaker_query() {
        // stronger: x -> v{1} * v.f -> u{5}; weaker: x -> v{1,2}
        let mut strong = Query::new();
        let v = strong.fresh_sym(locs(&[1]));
        let u = strong.fresh_sym(locs(&[5]));
        strong.locals.insert(VarId(0), Val::Sym(v));
        strong.heap.push(HeapCell { obj: v, field: FieldId(0), val: Val::Sym(u), idx: None });

        let mut weak = Query::new();
        let w = weak.fresh_sym(locs(&[1, 2]));
        weak.locals.insert(VarId(0), Val::Sym(w));

        assert!(strong.entails(&weak, false));
        assert!(!weak.entails(&strong, false));
        // Strict regions (fully symbolic): subset no longer suffices.
        assert!(!strong.entails(&weak, true));
    }

    #[test]
    fn entails_requires_matching_pure() {
        let mut a = Query::new();
        let s = a.fresh_sym(Region::Data);
        a.locals.insert(VarId(0), Val::Sym(s));
        a.pure.add(CmpOp::Eq, Term::sym(s.0), Term::int(3));

        let mut b = Query::new();
        let t = b.fresh_sym(Region::Data);
        b.locals.insert(VarId(0), Val::Sym(t));
        b.pure.add(CmpOp::Le, Term::sym(t.0), Term::int(5));

        assert!(a.entails(&b, false)); // s = 3 implies s <= 5
        assert!(!b.entails(&a, false));
    }

    #[test]
    fn describe_mentions_constraints() {
        let mut b = tir::ProgramBuilder::new();
        let main = b.method(None, "main", &[], None, |mb| {
            let x = mb.var("x", tir::Ty::Ref(mb.program_builder().object_class()));
            let _ = x;
            mb.ret_void();
        });
        b.set_entry(main);
        let p = b.finish();
        let mut q = Query::new();
        assert_eq!(q.describe(&p), "any");
        let v = q.fresh_sym(locs(&[1]));
        let x = p.method(main).locals.iter().copied().find(|&v| p.var(v).name == "x").unwrap();
        q.locals.insert(x, Val::Sym(v));
        let d = q.describe(&p);
        assert!(d.contains("x -> v0"), "{d}");
        assert!(d.contains("from"), "{d}");
    }
}
