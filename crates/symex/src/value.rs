//! Symbolic values.

/// A symbolic variable (the "hatted" `v̂` of the paper): an existential
/// standing for one concrete value — usually an object instance drawn from
/// the abstract locations of its `from` region.
///
/// Ids are scoped to one [`Query`](crate::Query); unification may merge two
/// ids, after which the query refers to the representative only.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymId(pub u32);

impl SymId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for SymId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl std::fmt::Display for SymId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A value as constrained by a query: a symbolic instance, the null
/// reference, or a known integer.
///
/// `Sym` always denotes a *concrete object instance or integer* — never
/// null. A query asserting `x ↦ v̂` therefore also asserts `x != null`;
/// unifying a `Sym` against `Null` refutes the query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Val {
    /// A symbolic value.
    Sym(SymId),
    /// The null reference.
    Null,
    /// A known integer constant.
    Int(i64),
}

impl Val {
    /// The symbolic id, if this is a symbolic value.
    pub fn sym(self) -> Option<SymId> {
        match self {
            Val::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// Applies a symbolic-id renaming.
    pub fn map_sym(self, f: impl FnOnce(SymId) -> SymId) -> Val {
        match self {
            Val::Sym(s) => Val::Sym(f(s)),
            other => other,
        }
    }
}

impl From<SymId> for Val {
    fn from(s: SymId) -> Val {
        Val::Sym(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sym_accessor() {
        assert_eq!(Val::Sym(SymId(3)).sym(), Some(SymId(3)));
        assert_eq!(Val::Null.sym(), None);
        assert_eq!(Val::Int(7).sym(), None);
    }

    #[test]
    fn map_sym_only_touches_syms() {
        assert_eq!(Val::Sym(SymId(1)).map_sym(|s| SymId(s.0 + 1)), Val::Sym(SymId(2)));
        assert_eq!(Val::Null.map_sym(|_| unreachable!()), Val::Null);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SymId(4)), "v4");
        assert_eq!(format!("{:?}", SymId(4)), "v4");
    }
}
