//! Refutation query keys.
//!
//! The scheduler, decision cache, and daemon originally spoke only in heap
//! edges. The null-dereference client asks a second question — "can `null`
//! flow into the value dereferenced here?" — so the unit of refutation work
//! is generalized to a [`RefKey`]: either a points-to edge or a
//! [`DerefSite`]. Both kinds run through the same engine, parallel
//! scheduler, and persistent store.

use pta::{HeapEdge, PtaView};
use tir::{CmdId, Program, VarId};

/// A candidate null dereference: command `cmd` dereferences the value of
/// local `base` (a field access, array access, or virtual call receiver).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DerefSite {
    /// The dereferencing command.
    pub cmd: CmdId,
    /// The local whose value is dereferenced by `cmd`.
    pub base: VarId,
}

impl DerefSite {
    /// Human-readable rendering, e.g. `null? b at obj.f = b.item`.
    pub fn describe(&self, program: &Program) -> String {
        format!("null? {} at {}", program.var(self.base).name, program.describe_cmd(self.cmd))
    }
}

/// The unit of refutation work: a heap edge (escape/leak clients) or a null
/// dereference site (null client).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RefKey {
    /// A flow-insensitive points-to edge to refute.
    Edge(HeapEdge),
    /// A candidate null dereference to refute.
    Deref(DerefSite),
}

impl RefKey {
    /// The heap edge, when this key is an edge query.
    pub fn as_edge(&self) -> Option<&HeapEdge> {
        match self {
            RefKey::Edge(e) => Some(e),
            RefKey::Deref(_) => None,
        }
    }

    /// The dereference site, when this key is a deref query.
    pub fn as_deref(&self) -> Option<&DerefSite> {
        match self {
            RefKey::Edge(_) => None,
            RefKey::Deref(s) => Some(s),
        }
    }

    /// Human-readable rendering for spans and logs.
    pub fn describe(&self, program: &Program, pta: &dyn PtaView) -> String {
        match self {
            RefKey::Edge(e) => e.describe(program, pta),
            RefKey::Deref(s) => s.describe(program),
        }
    }
}

impl From<HeapEdge> for RefKey {
    fn from(e: HeapEdge) -> Self {
        RefKey::Edge(e)
    }
}

impl From<DerefSite> for RefKey {
    fn from(s: DerefSite) -> Self {
        RefKey::Deref(s)
    }
}
