//! Parallel edge-refutation scheduling with a shared decision cache.
//!
//! Heap-reachability drivers (the leak client, the escape checker, the
//! facade's `query_reachable`) all run the same loop: find a heap path,
//! refute its edges in order, delete refuted edges, repeat. Edge decisions
//! dominate the wall clock and are independent of one another — each is a
//! pure function of `(edge, config)`, because [`Engine::refute_edge`]
//! resets all per-edge state on entry and never consults the deletion
//! overlay. That makes them the natural unit of parallelism.
//!
//! # Design: sequential coordinator, speculative workers
//!
//! The naive parallelization (decide all edges of all paths concurrently,
//! then merge) does not reproduce the sequential run: the sequential loop
//! never decides the edges *after* the first refuted edge of a path, and a
//! later job's paths depend on which edges earlier jobs deleted. Since the
//! scheduler must produce byte-identical reports for every `--jobs`
//! setting, the coordinator thread runs exactly the historical sequential
//! loop and remains the only place where decisions are *committed* —
//! worker threads merely warm a shared cache:
//!
//! - **Workers** pull speculative hints (edges of paths the coordinator has
//!   seen or is about to see), claim them in the lock-striped cache
//!   (vacant → in-flight), compute the decision on their own [`Engine`],
//!   and publish the result. All metrics emitted during the computation are
//!   buffered into an [`obs::MetricsDelta`] instead of the global registry.
//! - The **coordinator** demands edges in path order: a cached decision is
//!   used as-is, an in-flight one is awaited, a vacant one is computed
//!   inline. At first demand the decision is committed: its buffered
//!   metrics are replayed into the registry, its [`SearchStats`] delta is
//!   merged, and the driver tally is bumped. Speculative results that are
//!   never demanded are never accounted, so totals are independent of the
//!   worker count.
//! - When a path dies (an edge is refuted), its pending hints are
//!   **descheduled** via a shared cancellation token and counted under
//!   [`obs::Counter::EdgesDescheduled`] — distinct from aborted searches.
//!
//! With `jobs = 1` no threads are spawned and no hints are queued: the
//! run *is* the historical sequential loop.
//!
//! # Determinism caveat
//!
//! A decision is a pure function of `(edge, config)` except for wall-clock
//! deadlines ([`SymexConfig::edge_deadline`]/`total_deadline`): under a
//! deadline, a speculative worker may time out where the sequential run
//! would have decided the edge (or vice versa). Runs that need bit-exact
//! reproducibility across `--jobs` settings should not set deadlines; the
//! budget-based limits are deterministic.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use pta::{BitSet, HeapEdge, HeapGraphView, ModRef, PtaView};
use tir::{GlobalId, Program};

use crate::engine::{EdgeDecision, Engine};
use crate::key::{DerefSite, RefKey};
use crate::persist::{DecisionStore, Fingerprinter, PersistedDecision};
use crate::stats::{AbortCounts, SearchOutcome, SearchStats, StopReason, Witness};
use crate::SymexConfig;

/// Lock stripes in the shared edge-decision cache. Edges hash to stripes,
/// so contention is spread without a global lock.
const STRIPES: usize = 16;

/// The scheduler parallelism to use when the caller asks for "all cores".
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// One reachability job: sever every heap path from `source` to any
/// location in `targets`, or witness one.
#[derive(Clone, Debug)]
pub struct ReachJob {
    /// The global variable at the path source.
    pub source: GlobalId,
    /// The abstract locations at the path sink.
    pub targets: BitSet,
}

/// The verdict for one [`ReachJob`].
#[derive(Clone, Debug)]
pub enum JobVerdict {
    /// Every candidate path was severed by sound edge refutations.
    Refuted {
        /// The edges this job refuted (in refutation order).
        refuted_edges: Vec<HeapEdge>,
    },
    /// A path survived with every edge witnessed (or aborted, which is
    /// soundly treated as not-refuted).
    Witnessed {
        /// The surviving path.
        path: Vec<HeapEdge>,
        /// A witness for one of the path's edges, when a fresh decision
        /// produced one.
        witness: Option<Witness>,
    },
}

impl JobVerdict {
    /// True if reachability was refuted.
    pub fn is_refuted(&self) -> bool {
        matches!(self, JobVerdict::Refuted { .. })
    }
}

/// Driver-level accounting for the decisions committed by one scheduler
/// call. Every count is bumped exactly once, at commit time on the
/// coordinator, so tallies are identical for every worker count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Tally {
    /// Edges refuted.
    pub edges_refuted: u64,
    /// Edges witnessed.
    pub edges_witnessed: u64,
    /// Edges whose search aborted (soundly treated as not-refuted).
    pub edge_timeouts: u64,
    /// `edge_timeouts` broken down by reason.
    pub aborts: AbortCounts,
    /// Extra (degraded) refutation attempts beyond the strict first pass.
    pub retries: u64,
    /// Edges decided only by a coarsened retry.
    pub degraded_decisions: u64,
    /// Pending path edges descheduled because an earlier edge of their path
    /// was refuted (the path died before they were needed).
    pub edges_descheduled: u64,
    /// Committed decisions reused verbatim from the persistent store
    /// (zero when no store is attached).
    pub cache_hits: u64,
    /// Committed decisions computed live because the store had no record
    /// for their fingerprint (zero when no store is attached).
    pub cache_misses: u64,
    /// Committed decisions recomputed because the store's record for the
    /// same edge carried a stale fingerprint — i.e. an edit invalidated
    /// it (zero when no store is attached).
    pub cache_invalidated: u64,
    /// Path programs explored by live (non-disk) computations committed
    /// this run. Zero proves a fully warm run performed no symex path
    /// exploration at all, even though the replayed report counters are
    /// byte-identical to the cold run's.
    pub fresh_path_programs: u64,
    /// Sum of per-edge decision times (compute time, not wall clock — under
    /// parallel execution the wall clock is smaller). Disk hits contribute
    /// the *original* computation's time, keeping warm tallies comparable.
    pub symex_time: Duration,
}

/// The result of one [`RefutationScheduler::run`] call.
#[derive(Debug)]
pub struct SchedulerOutcome {
    /// One verdict per input job, in job order.
    pub verdicts: Vec<JobVerdict>,
    /// Accounting for the decisions this call committed.
    pub tally: Tally,
}

/// The answer [`RefutationScheduler::decide_edge`] gives for one edge.
#[derive(Debug)]
pub enum EdgeAnswer {
    /// The edge is refuted.
    Refuted,
    /// The edge is witnessed; carries the witness on the committing (first)
    /// demand, `None` on later cache hits.
    Witnessed(Option<Witness>),
    /// The search gave up for the stated reason; not refuted.
    Aborted(StopReason),
}

/// Everything one edge computation produced, parked in the cache until the
/// coordinator demands (and thereby accounts) it.
#[derive(Clone)]
struct CacheEntry {
    decision: EdgeDecision,
    stats: SearchStats,
    obs: obs::MetricsDelta,
    elapsed: Duration,
    /// True when the entry was loaded from the persistent store rather
    /// than computed in this process. Provenance is a function of the
    /// disk state alone — never of the thread count — so the cache
    /// counters derived from it at commit time are jobs-invariant.
    from_disk: bool,
}

/// The persistent warm-start tier below the in-memory striped cache: the
/// shared on-disk store plus the fingerprinter mapping edges to content
/// keys. Shared read-only between the coordinator and every worker.
struct DiskTier<'a> {
    program: &'a Program,
    store: Arc<DecisionStore>,
    fpr: Fingerprinter<'a>,
}

/// Looks `key` up in the persistent store. A hit yields a committable
/// entry flagged `from_disk`; any miss (no record, stale fingerprint —
/// stale records key under the old fingerprint, so they simply fail the
/// lookup) falls through to a live computation.
fn consult_disk(disk: &DiskTier<'_>, key: &RefKey) -> Option<CacheEntry> {
    let d = disk.store.lookup(disk.fpr.fingerprint_key(key))?;
    Some(CacheEntry {
        decision: d.decision,
        stats: d.stats,
        obs: d.obs,
        elapsed: d.elapsed,
        from_disk: true,
    })
}

enum Slot {
    /// Claimed by some thread; the result will appear as `Done`.
    InFlight,
    /// Computed, possibly not yet accounted.
    Done(Box<CacheEntry>),
}

struct Stripe {
    map: Mutex<HashMap<RefKey, Slot>>,
    /// Signalled when an in-flight entry of this stripe becomes done.
    ready: Condvar,
}

struct CacheStripes {
    stripes: Vec<Stripe>,
}

impl CacheStripes {
    fn new() -> Self {
        let stripes = (0..STRIPES)
            .map(|_| Stripe { map: Mutex::new(HashMap::new()), ready: Condvar::new() })
            .collect();
        CacheStripes { stripes }
    }

    fn stripe(&self, key: &RefKey) -> &Stripe {
        let h = match key {
            RefKey::Edge(HeapEdge::Global { global, target }) => {
                global.index() ^ (target.index() << 3)
            }
            RefKey::Edge(HeapEdge::Field { base, field, target }) => {
                base.index() ^ (field.index() << 2) ^ (target.index() << 5)
            }
            RefKey::Deref(DerefSite { cmd, base }) => cmd.index() ^ (base.index() << 4),
        };
        &self.stripes[h % STRIPES]
    }
}

/// A speculative work item: decide `key` unless its path died first.
struct Hint {
    key: RefKey,
    cancel: Arc<AtomicBool>,
}

/// The per-run speculation queue shared between coordinator and workers.
struct RunQueue {
    queue: Mutex<VecDeque<Hint>>,
    ready: Condvar,
    done: AtomicBool,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl RunQueue {
    fn new() -> Self {
        RunQueue {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            done: AtomicBool::new(false),
        }
    }

    fn push(&self, hints: Vec<Hint>) {
        if hints.is_empty() {
            return;
        }
        let mut q = lock(&self.queue);
        q.extend(hints);
        drop(q);
        self.ready.notify_all();
    }

    /// Blocks for the next hint; `None` once the run is over (any backlog
    /// is abandoned — its results would never be demanded).
    fn pop(&self) -> Option<Hint> {
        let mut q = lock(&self.queue);
        loop {
            if self.done.load(Ordering::Acquire) {
                return None;
            }
            if let Some(h) = q.pop_front() {
                return Some(h);
            }
            q = self.ready.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn finish(&self) {
        self.done.store(true, Ordering::Release);
        // Take the lock so no worker can be between its done-check and its
        // wait when the wakeup fires.
        drop(lock(&self.queue));
        self.ready.notify_all();
    }
}

/// Runs one refutation with all metric emission buffered, and packages
/// the result for deferred accounting.
fn compute(engine: &mut Engine<'_>, key: &RefKey) -> CacheEntry {
    let before = engine.stats.clone();
    let t0 = Instant::now();
    let (decision, delta) = obs::capture(|| engine.refute_key_resilient(key));
    CacheEntry {
        decision,
        stats: engine.stats.delta_since(&before),
        obs: delta,
        elapsed: t0.elapsed(),
        from_disk: false,
    }
}

/// The worker loop: claim speculative hints and publish their decisions,
/// consulting the persistent tier before computing.
fn worker(
    queue: &RunQueue,
    cache: &CacheStripes,
    disk: Option<&DiskTier<'_>>,
    mut engine: Engine<'_>,
) {
    while let Some(hint) = queue.pop() {
        if hint.cancel.load(Ordering::Relaxed) {
            continue;
        }
        let stripe = cache.stripe(&hint.key);
        {
            let mut map = lock(&stripe.map);
            if map.contains_key(&hint.key) {
                continue;
            }
            map.insert(hint.key, Slot::InFlight);
        }
        let entry = disk
            .and_then(|d| consult_disk(d, &hint.key))
            .unwrap_or_else(|| compute(&mut engine, &hint.key));
        let mut map = lock(&stripe.map);
        map.insert(hint.key, Slot::Done(Box::new(entry)));
        drop(map);
        stripe.ready.notify_all();
    }
}

/// Coordinator-side demand for one key: cache hit, await, or compute
/// inline; commit (account) the decision on first demand.
#[allow(clippy::too_many_arguments)]
fn demand<'a>(
    key: RefKey,
    cache: &CacheStripes,
    disk: Option<&DiskTier<'a>>,
    engine: &mut Engine<'a>,
    committed: &mut HashMap<RefKey, EdgeDecision>,
    stats: &mut SearchStats,
    tally: &mut Tally,
) -> EdgeAnswer {
    if let Some(d) = committed.get(&key) {
        // Already accounted: answer from the committed decision; no witness
        // on cache hits (mirrors the historical per-client caches).
        return match &d.outcome {
            SearchOutcome::Refuted => EdgeAnswer::Refuted,
            SearchOutcome::Witnessed(_) => EdgeAnswer::Witnessed(None),
            SearchOutcome::Aborted(r) => EdgeAnswer::Aborted(r.clone()),
        };
    }
    let stripe = cache.stripe(&key);
    let entry: CacheEntry = 'get: {
        let mut map = lock(&stripe.map);
        loop {
            match map.get(&key) {
                Some(Slot::Done(e)) => break 'get (**e).clone(),
                Some(Slot::InFlight) => {
                    map = stripe.ready.wait(map).unwrap_or_else(|e| e.into_inner());
                }
                None => {
                    map.insert(key, Slot::InFlight);
                    break;
                }
            }
        }
        drop(map);
        let entry =
            disk.and_then(|d| consult_disk(d, &key)).unwrap_or_else(|| compute(engine, &key));
        let mut map = lock(&stripe.map);
        map.insert(key, Slot::Done(Box::new(entry.clone())));
        drop(map);
        stripe.ready.notify_all();
        entry
    };
    // Commit: this is the only place buffered metrics reach the registry
    // and the only recording site for the per-reason abort counters, so
    // totals are identical for every worker count. The cache counters
    // follow the same discipline: provenance travels on the entry, and
    // only demanded (committed) decisions are counted.
    entry.obs.replay();
    stats.merge(&entry.stats);
    if let Some(d) = disk {
        let fp = d.fpr.fingerprint_key(&key);
        let key_str = d.fpr.key_string(&key);
        if entry.from_disk {
            tally.cache_hits += 1;
            obs::add(obs::Counter::CacheHits, 1);
        } else {
            if d.store.has_stale(&key_str, fp) {
                tally.cache_invalidated += 1;
                obs::add(obs::Counter::CacheInvalidated, 1);
            } else {
                tally.cache_misses += 1;
                obs::add(obs::Counter::CacheMisses, 1);
            }
            d.store.record(
                d.program,
                fp,
                &key_str,
                &PersistedDecision {
                    decision: entry.decision.clone(),
                    stats: entry.stats.clone(),
                    obs: entry.obs.clone(),
                    elapsed: entry.elapsed,
                },
            );
        }
    }
    if !entry.from_disk {
        tally.fresh_path_programs += entry.stats.path_programs;
    }
    tally.symex_time += entry.elapsed;
    tally.retries += u64::from(entry.decision.attempts.saturating_sub(1));
    if entry.decision.degraded {
        tally.degraded_decisions += 1;
    }
    let answer = match &entry.decision.outcome {
        SearchOutcome::Refuted => {
            tally.edges_refuted += 1;
            EdgeAnswer::Refuted
        }
        SearchOutcome::Witnessed(w) => {
            tally.edges_witnessed += 1;
            EdgeAnswer::Witnessed(Some(w.clone()))
        }
        SearchOutcome::Aborted(r) => {
            tally.edge_timeouts += 1;
            tally.aborts.record(r);
            EdgeAnswer::Aborted(r.clone())
        }
    };
    committed.insert(key, entry.decision);
    answer
}

/// The sequential refute-and-reroute loop for one job, demanding edge
/// decisions through the shared cache.
#[allow(clippy::too_many_arguments)]
fn run_job<'a>(
    program: &'a Program,
    view: &mut HeapGraphView<'_>,
    job: &ReachJob,
    queue: Option<&RunQueue>,
    cache: &CacheStripes,
    disk: Option<&DiskTier<'a>>,
    engine: &mut Engine<'a>,
    committed: &mut HashMap<RefKey, EdgeDecision>,
    stats: &mut SearchStats,
    tally: &mut Tally,
) -> JobVerdict {
    let mut refuted_edges = Vec::new();
    'paths: loop {
        let Some(path) = view.find_path(program, job.source, &job.targets) else {
            return JobVerdict::Refuted { refuted_edges };
        };
        let cancel = Arc::new(AtomicBool::new(false));
        if let Some(q) = queue {
            q.push(
                path.iter()
                    .filter(|&&e| !committed.contains_key(&RefKey::Edge(e)))
                    .map(|&edge| Hint { key: RefKey::Edge(edge), cancel: cancel.clone() })
                    .collect(),
            );
        }
        let mut last_witness = None;
        for (i, &edge) in path.iter().enumerate() {
            match demand(RefKey::Edge(edge), cache, disk, engine, committed, stats, tally) {
                EdgeAnswer::Refuted => {
                    view.delete(edge);
                    refuted_edges.push(edge);
                    // The rest of this path is moot: deschedule its pending
                    // edges. The count only looks at coordinator-committed
                    // state, so it is identical for every worker count.
                    cancel.store(true, Ordering::Relaxed);
                    let descheduled = path[i + 1..]
                        .iter()
                        .filter(|&&e| !committed.contains_key(&RefKey::Edge(e)))
                        .count() as u64;
                    if descheduled > 0 {
                        tally.edges_descheduled += descheduled;
                        obs::add(obs::Counter::EdgesDescheduled, descheduled);
                    }
                    continue 'paths;
                }
                EdgeAnswer::Witnessed(w) => last_witness = w.or(last_witness),
                // An abort is soundly treated as not-refuted.
                EdgeAnswer::Aborted(_) => {}
            }
        }
        return JobVerdict::Witnessed { path, witness: last_witness };
    }
}

/// A parallel refutation scheduler over one analyzed program. Owns the
/// shared edge-decision cache, the committed-decision log, and the merged
/// engine statistics; these persist across [`RefutationScheduler::run`]
/// calls, so repeated calls (e.g. triaging alarms one at a time) share
/// decisions exactly like the historical per-client caches did.
pub struct RefutationScheduler<'a> {
    program: &'a Program,
    pta: &'a dyn PtaView,
    modref: &'a ModRef,
    config: SymexConfig,
    jobs: usize,
    /// One absolute cutoff shared by the coordinator and every worker
    /// engine — a per-engine `total_deadline` would multiply the allowance
    /// by the worker count.
    deadline_at: Option<Instant>,
    engine: Engine<'a>,
    cache: CacheStripes,
    /// The optional persistent warm-start tier below the striped cache.
    disk: Option<DiskTier<'a>>,
    committed: HashMap<RefKey, EdgeDecision>,
    stats: SearchStats,
}

impl<'a> RefutationScheduler<'a> {
    /// Creates a scheduler. `jobs` is the total thread count (coordinator
    /// included); `1` means fully sequential, values are clamped to at
    /// least 1.
    pub fn new(
        program: &'a Program,
        pta: &'a dyn PtaView,
        modref: &'a ModRef,
        config: SymexConfig,
        jobs: usize,
    ) -> Self {
        let deadline_at = config.total_deadline.map(|d| Instant::now() + d);
        let mut engine = Engine::new(program, pta, modref, config.clone());
        engine.set_deadline_at(deadline_at);
        RefutationScheduler {
            program,
            pta,
            modref,
            config,
            jobs: jobs.max(1),
            deadline_at,
            engine,
            cache: CacheStripes::new(),
            disk: None,
            committed: HashMap::new(),
            stats: SearchStats::default(),
        }
    }

    /// Attaches a persistent [`DecisionStore`] as the warm-start tier
    /// below the in-memory striped cache: workers and the coordinator
    /// consult it before computing, and the coordinator writes every
    /// live-computed decision through at commit (in read-write mode).
    /// Fingerprints are derived from this scheduler's program, points-to
    /// result, and configuration.
    pub fn with_store(mut self, store: Arc<DecisionStore>) -> Self {
        self.set_store(store);
        self
    }

    /// Setter form of [`RefutationScheduler::with_store`].
    pub fn set_store(&mut self, store: Arc<DecisionStore>) {
        self.disk = Some(DiskTier {
            program: self.program,
            fpr: Fingerprinter::new(self.program, self.pta.exhaustive(), &self.config),
            store,
        });
    }

    /// Like [`RefutationScheduler::set_store`], but builds the
    /// fingerprinter through a cross-edit [`MethodHashCache`]: only
    /// methods named in `changed` (plus methods new to the cache) are
    /// re-hashed, so attaching the store after an edit-delta solve costs
    /// proportional to the edit, not the program.
    pub fn set_store_cached(
        &mut self,
        store: Arc<DecisionStore>,
        method_hashes: &mut crate::persist::MethodHashCache,
        changed: &[tir::MethodId],
    ) {
        self.disk = Some(DiskTier {
            program: self.program,
            fpr: Fingerprinter::with_cache(
                self.program,
                self.pta.exhaustive(),
                &self.config,
                method_hashes,
                changed,
            ),
            store,
        });
    }

    /// The configured thread count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Overrides the thread count (clamped to at least 1).
    pub fn set_jobs(&mut self, jobs: usize) {
        self.jobs = jobs.max(1);
    }

    /// The merged engine statistics of every decision committed so far.
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }

    /// Every committed edge decision, in canonical edge order — independent
    /// of thread count and commit order. Deref decisions are reported
    /// separately by [`RefutationScheduler::deref_decisions`].
    pub fn decisions(&self) -> Vec<(HeapEdge, EdgeDecision)> {
        let mut v: Vec<_> = self
            .committed
            .iter()
            .filter_map(|(k, d)| k.as_edge().map(|e| (*e, d.clone())))
            .collect();
        v.sort_by_key(|&(e, _)| e);
        v
    }

    /// Every committed deref decision, in canonical site order —
    /// independent of thread count and commit order.
    pub fn deref_decisions(&self) -> Vec<(DerefSite, EdgeDecision)> {
        let mut v: Vec<_> = self
            .committed
            .iter()
            .filter_map(|(k, d)| k.as_deref().map(|s| (*s, d.clone())))
            .collect();
        v.sort_by_key(|&(s, _)| s);
        v
    }

    /// Decides a single edge through the shared cache, committing it on
    /// first demand (sequentially, on the calling thread). Accounting goes
    /// into `tally`.
    pub fn decide_edge(&mut self, edge: HeapEdge, tally: &mut Tally) -> EdgeAnswer {
        self.decide_key(RefKey::Edge(edge), tally)
    }

    /// Decides a single null-dereference candidate through the shared
    /// cache, committing it on first demand.
    pub fn decide_deref(&mut self, site: DerefSite, tally: &mut Tally) -> EdgeAnswer {
        self.decide_key(RefKey::Deref(site), tally)
    }

    fn decide_key(&mut self, key: RefKey, tally: &mut Tally) -> EdgeAnswer {
        demand(
            key,
            &self.cache,
            self.disk.as_ref(),
            &mut self.engine,
            &mut self.committed,
            &mut self.stats,
            tally,
        )
    }

    /// Decides every candidate dereference in `sites`, in order, through
    /// the shared cache. With `jobs > 1`, worker threads speculatively warm
    /// the cache over the whole batch while the coordinator demands (and
    /// commits) the sites in input order — answers, tallies, and report
    /// metrics are identical for every `jobs` setting.
    pub fn run_derefs(
        &mut self,
        sites: &[DerefSite],
        tally: &mut Tally,
    ) -> Vec<(DerefSite, EdgeAnswer)> {
        let workers = self.jobs - 1;
        if workers == 0 {
            return sites
                .iter()
                .map(|&site| (site, self.decide_key(RefKey::Deref(site), tally)))
                .collect();
        }
        let program = self.program;
        let pta = self.pta;
        let modref = self.modref;
        let deadline_at = self.deadline_at;
        let cache = &self.cache;
        let disk = self.disk.as_ref();
        let engine = &mut self.engine;
        let committed = &mut self.committed;
        let stats = &mut self.stats;
        let queue = RunQueue::new();
        let mut out = Vec::with_capacity(sites.len());
        std::thread::scope(|s| {
            for i in 0..workers {
                let cfg = self.config.clone();
                let queue = &queue;
                std::thread::Builder::new()
                    .name(format!("refute-{i}"))
                    .spawn_scoped(s, move || {
                        let mut e = Engine::new(program, pta, modref, cfg);
                        e.set_deadline_at(deadline_at);
                        worker(queue, cache, disk, e);
                    })
                    .expect("spawn refutation worker");
            }
            // Seed the whole batch; sites are independent, so nothing is
            // ever descheduled.
            let cancel = Arc::new(AtomicBool::new(false));
            let mut seen = HashSet::new();
            let mut seeds = Vec::new();
            for &site in sites {
                let key = RefKey::Deref(site);
                if !committed.contains_key(&key) && seen.insert(key) {
                    seeds.push(Hint { key, cancel: cancel.clone() });
                }
            }
            queue.push(seeds);
            for &site in sites {
                let answer =
                    demand(RefKey::Deref(site), cache, disk, engine, committed, stats, tally);
                out.push((site, answer));
            }
            queue.finish();
        });
        out
    }

    /// Runs the given jobs in order over `view`. The verdicts, committed
    /// decisions, statistics, and report metrics are identical for every
    /// `jobs` setting (see the module docs for the deadline caveat); the
    /// wall clock is not.
    pub fn run(&mut self, view: &mut HeapGraphView<'_>, work: &[ReachJob]) -> SchedulerOutcome {
        let mut tally = Tally::default();
        let mut verdicts = Vec::with_capacity(work.len());
        let workers = self.jobs - 1;
        if workers == 0 {
            // Sequential fast path: no threads, no queue, no speculation —
            // this is the historical driver loop verbatim.
            for job in work {
                verdicts.push(run_job(
                    self.program,
                    view,
                    job,
                    None,
                    &self.cache,
                    self.disk.as_ref(),
                    &mut self.engine,
                    &mut self.committed,
                    &mut self.stats,
                    &mut tally,
                ));
            }
            return SchedulerOutcome { verdicts, tally };
        }

        let program = self.program;
        let pta = self.pta;
        let modref = self.modref;
        let deadline_at = self.deadline_at;
        let cache = &self.cache;
        let disk = self.disk.as_ref();
        let engine = &mut self.engine;
        let committed = &mut self.committed;
        let stats = &mut self.stats;
        let queue = RunQueue::new();
        std::thread::scope(|s| {
            for i in 0..workers {
                let cfg = self.config.clone();
                let queue = &queue;
                std::thread::Builder::new()
                    .name(format!("refute-{i}"))
                    .spawn_scoped(s, move || {
                        let mut e = Engine::new(program, pta, modref, cfg);
                        e.set_deadline_at(deadline_at);
                        worker(queue, cache, disk, e);
                    })
                    .expect("spawn refutation worker");
            }
            // Pre-seed speculation with every job's initial path so workers
            // chew on later jobs while the coordinator walks earlier ones.
            // Later deletions may invalidate these paths; that only wastes
            // speculative work, never correctness.
            let seed = Arc::new(AtomicBool::new(false));
            let mut seen = HashSet::new();
            let mut seeds = Vec::new();
            for job in work {
                if let Some(path) = view.find_path(program, job.source, &job.targets) {
                    for edge in path {
                        let key = RefKey::Edge(edge);
                        if !committed.contains_key(&key) && seen.insert(key) {
                            seeds.push(Hint { key, cancel: seed.clone() });
                        }
                    }
                }
            }
            queue.push(seeds);
            for job in work {
                verdicts.push(run_job(
                    program,
                    view,
                    job,
                    Some(&queue),
                    cache,
                    disk,
                    engine,
                    committed,
                    stats,
                    &mut tally,
                ));
            }
            queue.finish();
        });
        SchedulerOutcome { verdicts, tally }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pta::PtaResult;
    use pta::ContextPolicy;

    fn setup(src: &str) -> (Program, PtaResult, ModRef) {
        let p = tir::parse(src).expect("parse");
        let r = pta::analyze(&p, ContextPolicy::Insensitive);
        let m = ModRef::compute(&p, &r);
        (p, r, m)
    }

    const SRC: &str = r#"
class Box { field item: Object; field spare: Object; }
global CACHE: Box;
global OTHER: Box;
fn main() {
  var b: Box;
  var c: Box;
  var secret: Object;
  var s: Object;
  var flag: int;
  b = new Box @box0;
  c = new Box @box1;
  secret = new Object @secret0;
  s = new Object @str0;
  flag = 0;
  if (flag == 1) {
    b.item = secret;
  }
  b.item = s;
  c.spare = s;
  $CACHE = b;
  $OTHER = c;
}
entry main;
"#;

    fn jobs_for(p: &Program, pta: &PtaResult, names: &[(&str, &str)]) -> Vec<ReachJob> {
        names
            .iter()
            .map(|(g, l)| {
                let source = p.global_by_name(g).unwrap();
                let target = pta.locs().ids().find(|&loc| pta.loc_name(p, loc) == *l).unwrap();
                ReachJob { source, targets: BitSet::singleton(target.index()) }
            })
            .collect()
    }

    fn run_with(jobs: usize) -> (Vec<bool>, Tally, SearchStats, Vec<(HeapEdge, EdgeDecision)>) {
        let (p, r, m) = setup(SRC);
        let work = jobs_for(
            &p,
            &r,
            &[("CACHE", "secret0"), ("CACHE", "str0"), ("OTHER", "str0"), ("OTHER", "secret0")],
        );
        let mut sched = RefutationScheduler::new(&p, &r, &m, SymexConfig::default(), jobs);
        let mut view = HeapGraphView::new(&r);
        let out = sched.run(&mut view, &work);
        let refuted: Vec<bool> = out.verdicts.iter().map(JobVerdict::is_refuted).collect();
        (refuted, out.tally, sched.stats().clone(), sched.decisions())
    }

    #[test]
    fn verdicts_match_expectations() {
        let (refuted, tally, stats, _) = run_with(1);
        assert_eq!(refuted, [true, false, false, true]);
        assert!(tally.edges_refuted > 0);
        assert!(tally.edges_witnessed > 0);
        assert!(stats.cmds_executed > 0);
    }

    #[test]
    fn parallel_runs_are_deterministic() {
        let seq = run_with(1);
        for jobs in [2, 4, 8] {
            let par = run_with(jobs);
            assert_eq!(seq.0, par.0, "verdicts differ at jobs={jobs}");
            // Compare tallies minus the timing field.
            let mut a = seq.1.clone();
            let mut b = par.1.clone();
            a.symex_time = Duration::ZERO;
            b.symex_time = Duration::ZERO;
            assert_eq!(a, b, "tally differs at jobs={jobs}");
            assert_eq!(seq.2, par.2, "search stats differ at jobs={jobs}");
            let key = |d: &[(HeapEdge, EdgeDecision)]| {
                d.iter()
                    .map(|(e, d)| (*e, d.outcome.is_refuted(), d.attempts, d.degraded))
                    .collect::<Vec<_>>()
            };
            assert_eq!(key(&seq.3), key(&par.3), "decisions differ at jobs={jobs}");
        }
    }

    #[test]
    fn cache_persists_across_run_calls() {
        let (p, r, m) = setup(SRC);
        let work = jobs_for(&p, &r, &[("CACHE", "str0"), ("OTHER", "str0")]);
        let mut sched = RefutationScheduler::new(&p, &r, &m, SymexConfig::default(), 1);
        let mut view = HeapGraphView::new(&r);
        let first = sched.run(&mut view, &work[..1]);
        let decided =
            first.tally.edges_refuted + first.tally.edges_witnessed + first.tally.edge_timeouts;
        assert!(decided > 0);
        // Re-running the same job hits only committed decisions.
        let again = sched.run(&mut view, &work[..1]);
        assert_eq!(again.tally, Tally::default());
    }

    #[test]
    fn disk_tier_warm_starts_schedulers() {
        use crate::persist::CacheMode;
        let dir = std::env::temp_dir().join("thresher-parallel-disk-tier");
        let _ = std::fs::remove_dir_all(&dir);
        let (p, r, m) = setup(SRC);
        let work = jobs_for(&p, &r, &[("CACHE", "secret0"), ("CACHE", "str0"), ("OTHER", "str0")]);

        let cold_store =
            Arc::new(DecisionStore::open(&dir, CacheMode::ReadWrite, &p).expect("open"));
        let mut cold = RefutationScheduler::new(&p, &r, &m, SymexConfig::default(), 1)
            .with_store(cold_store.clone());
        let mut view = HeapGraphView::new(&r);
        let cold_out = cold.run(&mut view, &work);
        let decided = cold_out.tally.cache_misses + cold_out.tally.cache_invalidated;
        assert!(decided > 0);
        assert_eq!(cold_out.tally.cache_hits, 0, "first run must be all misses");
        assert_eq!(cold_out.tally.cache_invalidated, 0);
        assert!(cold_out.tally.fresh_path_programs > 0);
        assert_eq!(cold_store.len() as u64, decided, "write-through persists each decision");

        for jobs in [1, 4] {
            let store = Arc::new(DecisionStore::open(&dir, CacheMode::Read, &p).expect("reopen"));
            let mut warm = RefutationScheduler::new(&p, &r, &m, SymexConfig::default(), jobs)
                .with_store(store);
            let mut view = HeapGraphView::new(&r);
            let warm_out = warm.run(&mut view, &work);
            let warm_refuted: Vec<bool> =
                warm_out.verdicts.iter().map(JobVerdict::is_refuted).collect();
            let cold_refuted: Vec<bool> =
                cold_out.verdicts.iter().map(JobVerdict::is_refuted).collect();
            assert_eq!(warm_refuted, cold_refuted, "jobs={jobs}");
            assert_eq!(warm_out.tally.cache_hits, decided, "jobs={jobs}");
            assert_eq!(warm_out.tally.cache_misses, 0, "jobs={jobs}");
            assert_eq!(warm_out.tally.cache_invalidated, 0, "jobs={jobs}");
            assert_eq!(
                warm_out.tally.fresh_path_programs, 0,
                "warm run must perform zero live path explorations (jobs={jobs})"
            );
            // Replayed deltas reproduce the cold run's merged stats.
            assert_eq!(warm.stats(), cold.stats(), "jobs={jobs}");
        }

        // A different config must not reuse the records.
        let store = Arc::new(DecisionStore::open(&dir, CacheMode::Read, &p).expect("reopen"));
        let cfg = SymexConfig::default().with_budget(9_999);
        let mut other = RefutationScheduler::new(&p, &r, &m, cfg, 1).with_store(store);
        let mut view = HeapGraphView::new(&r);
        let other_out = other.run(&mut view, &work);
        assert_eq!(other_out.tally.cache_hits, 0, "config change must miss");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `b` is null unless the guarded allocation ran; `c` is always
    /// allocated. The read through `b` is a real null dereference, the
    /// write through `c` is refutable.
    const NULL_SRC: &str = r#"
class Box { field item: Object; }
fn main() {
  var b: Box;
  var c: Box;
  var o: Object;
  var flag: int;
  flag = 0;
  c = new Box @box1;
  if (flag == 1) {
    b = new Box @box0;
  }
  o = b.item;
  c.item = o;
}
entry main;
"#;

    fn read_site(p: &Program, base: &str) -> DerefSite {
        (0..p.num_cmds())
            .map(tir::CmdId::from_index)
            .find_map(|c| match p.cmd(c) {
                tir::Command::ReadField { obj, .. } if p.var(*obj).name == base => {
                    Some(DerefSite { cmd: c, base: *obj })
                }
                _ => None,
            })
            .expect("no field read through that base")
    }

    fn write_site(p: &Program, base: &str) -> DerefSite {
        (0..p.num_cmds())
            .map(tir::CmdId::from_index)
            .find_map(|c| match p.cmd(c) {
                tir::Command::WriteField { obj, .. } if p.var(*obj).name == base => {
                    Some(DerefSite { cmd: c, base: *obj })
                }
                _ => None,
            })
            .expect("no field write through that base")
    }

    #[test]
    fn deref_answers_split_by_null_flow() {
        let (p, r, m) = setup(NULL_SRC);
        let mut sched = RefutationScheduler::new(&p, &r, &m, SymexConfig::default(), 1);
        let mut tally = Tally::default();
        let nullable = sched.decide_deref(read_site(&p, "b"), &mut tally);
        assert!(matches!(nullable, EdgeAnswer::Witnessed(Some(_))), "{nullable:?}");
        let safe = sched.decide_deref(write_site(&p, "c"), &mut tally);
        assert!(matches!(safe, EdgeAnswer::Refuted), "{safe:?}");
        assert_eq!(tally.edges_witnessed, 1);
        assert_eq!(tally.edges_refuted, 1);
        // Second demand is a cache hit: committed, no witness, no re-count.
        let again = sched.decide_deref(read_site(&p, "b"), &mut tally);
        assert!(matches!(again, EdgeAnswer::Witnessed(None)));
        assert_eq!(tally.edges_witnessed, 1);
        assert_eq!(sched.deref_decisions().len(), 2);
        assert!(sched.decisions().is_empty(), "no edge decisions were made");
    }

    #[test]
    fn run_derefs_is_jobs_invariant_and_disk_warmable() {
        use crate::persist::CacheMode;
        let dir = std::env::temp_dir().join("thresher-parallel-deref-disk");
        let _ = std::fs::remove_dir_all(&dir);
        let (p, r, m) = setup(NULL_SRC);
        let sites = [read_site(&p, "b"), write_site(&p, "c")];

        let store = Arc::new(DecisionStore::open(&dir, CacheMode::ReadWrite, &p).expect("open"));
        let mut cold = RefutationScheduler::new(&p, &r, &m, SymexConfig::default(), 1)
            .with_store(store.clone());
        let mut cold_tally = Tally::default();
        let cold_out = cold.run_derefs(&sites, &mut cold_tally);
        assert_eq!(cold_tally.cache_misses, 2);
        assert_eq!(cold_tally.cache_hits, 0);
        assert_eq!(store.len(), 2, "write-through persists deref decisions");

        for jobs in [1, 4] {
            let store = Arc::new(DecisionStore::open(&dir, CacheMode::Read, &p).expect("reopen"));
            let mut warm = RefutationScheduler::new(&p, &r, &m, SymexConfig::default(), jobs)
                .with_store(store);
            let mut tally = Tally::default();
            let out = warm.run_derefs(&sites, &mut tally);
            let shape = |v: &[(DerefSite, EdgeAnswer)]| {
                v.iter().map(|(s, a)| (*s, matches!(a, EdgeAnswer::Refuted))).collect::<Vec<_>>()
            };
            assert_eq!(shape(&out), shape(&cold_out), "jobs={jobs}");
            assert_eq!(tally.cache_hits, 2, "jobs={jobs}");
            assert_eq!(tally.fresh_path_programs, 0, "jobs={jobs}");
            assert_eq!(warm.stats(), cold.stats(), "jobs={jobs}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The must-not-null strong update: `b != null` pins `b` non-null, so
    /// a null reaching the guarded dereference *through the heap* (here a
    /// global) is refuted only when `track_null_guards` is on.
    #[test]
    fn null_guard_strong_update_is_gated() {
        const SRC: &str = r#"
class Box { field item: Object; }
global G: Box;
fn main() {
  var b: Box;
  var t: Box;
  var o: Object;
  var flag: int;
  flag = 0;
  if (flag == 1) {
    b = new Box @box0;
  }
  $G = b;
  if (b != null) {
    t = $G;
    o = t.item;
  }
}
entry main;
"#;
        let (p, r, m) = setup(SRC);
        let site = read_site(&p, "t");
        let mut engine = Engine::new(&p, &r, &m, SymexConfig::default());
        assert!(
            engine.refute_deref(&site).is_witnessed(),
            "without guard tracking the heap-routed null survives"
        );
        let mut engine =
            Engine::new(&p, &r, &m, SymexConfig::default().with_null_guards(true));
        assert!(
            engine.refute_deref(&site).is_refuted(),
            "guard tracking refutes the heap-routed null flow"
        );
    }

    #[test]
    fn decide_edge_commits_once() {
        let (p, r, m) = setup(SRC);
        let g = p.global_by_name("CACHE").unwrap();
        let target = r.locs().ids().find(|&l| r.loc_name(&p, l) == "box0").unwrap();
        let edge = HeapEdge::Global { global: g, target };
        let mut sched = RefutationScheduler::new(&p, &r, &m, SymexConfig::default(), 1);
        let mut tally = Tally::default();
        let first = sched.decide_edge(edge, &mut tally);
        assert!(matches!(first, EdgeAnswer::Witnessed(Some(_))));
        assert_eq!(tally.edges_witnessed, 1);
        let second = sched.decide_edge(edge, &mut tally);
        assert!(matches!(second, EdgeAnswer::Witnessed(None)));
        assert_eq!(tally.edges_witnessed, 1, "cache hit must not re-account");
    }
}
