//! Points-to regions — the ranges of `from` instance constraints.

use pta::BitSet;

/// The range of a `v̂ from r̂` instance constraint (§3.1): either a set of
/// abstract locations, or the distinguished `data` region of non-address
/// values (integers).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Region {
    /// Instances drawn from this set of abstract locations.
    Locs(BitSet),
    /// A non-address (integer) value.
    Data,
}

impl Region {
    /// A region of the given locations.
    pub fn locs(set: BitSet) -> Region {
        Region::Locs(set)
    }

    /// A region containing a single location.
    pub fn singleton(loc: usize) -> Region {
        Region::Locs(BitSet::singleton(loc))
    }

    /// True if the region denotes no values — axiom (1) of §3.2: a `from ∅`
    /// constraint is a contradiction.
    pub fn is_empty(&self) -> bool {
        match self {
            Region::Locs(s) => s.is_empty(),
            Region::Data => false,
        }
    }

    /// Intersects with another region (axiom (2) of §3.2). Locations and
    /// `data` are disjoint, so mixing them yields the empty region.
    pub fn intersect(&self, other: &Region) -> Region {
        match (self, other) {
            (Region::Locs(a), Region::Locs(b)) => Region::Locs(a.intersection(b)),
            (Region::Data, Region::Data) => Region::Data,
            (Region::Locs(_), Region::Data) | (Region::Data, Region::Locs(_)) => {
                Region::Locs(BitSet::new())
            }
        }
    }

    /// Intersects with a location set.
    pub fn intersect_locs(&self, locs: &BitSet) -> Region {
        self.intersect(&Region::Locs(locs.clone()))
    }

    /// Subset check — the entailment of Equation (§) in §3.3:
    /// `(v from r̂1) |= (v from r̂2)` iff `r̂1 ⊆ r̂2`.
    pub fn is_subset(&self, other: &Region) -> bool {
        match (self, other) {
            (Region::Locs(a), Region::Locs(b)) => a.is_subset(b),
            (Region::Data, Region::Data) => true,
            (Region::Locs(a), Region::Data) => a.is_empty(),
            (Region::Data, Region::Locs(_)) => false,
        }
    }

    /// The location set, if this is a location region.
    pub fn as_locs(&self) -> Option<&BitSet> {
        match self {
            Region::Locs(s) => Some(s),
            Region::Data => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_detection() {
        assert!(Region::Locs(BitSet::new()).is_empty());
        assert!(!Region::singleton(3).is_empty());
        assert!(!Region::Data.is_empty());
    }

    #[test]
    fn intersection_narrows() {
        let a = Region::locs([1, 2, 3].into_iter().collect());
        let b = Region::locs([2, 3, 4].into_iter().collect());
        let i = a.intersect(&b);
        assert_eq!(i.as_locs().unwrap().iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn data_and_locs_are_disjoint() {
        let a = Region::singleton(1);
        assert!(a.intersect(&Region::Data).is_empty());
        assert!(Region::Data.intersect(&a).is_empty());
        assert_eq!(Region::Data.intersect(&Region::Data), Region::Data);
    }

    #[test]
    fn subset_follows_set_inclusion() {
        let small = Region::singleton(2);
        let big = Region::locs([1, 2].into_iter().collect());
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(Region::Data.is_subset(&Region::Data));
        assert!(!Region::Data.is_subset(&big));
    }
}
