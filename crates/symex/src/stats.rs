//! Search outcomes, abort provenance, witnesses, and statistics.

use tir::{CmdId, Program};

use crate::query::Refuted;

/// A path program witnessing a query: the reverse-order trace of commands
/// the backwards search traversed from the producing statement to the point
/// where the query was discharged.
#[derive(Clone, Debug)]
pub struct Witness {
    /// Commands traversed, most recent (closest to discharge) last.
    pub trace: Vec<CmdId>,
    /// Rendering of the final (discharged or entry) query.
    pub final_query: String,
}

impl Witness {
    /// The rendered trace steps, most recent last — the single source both
    /// [`Witness::describe`] and [`Witness::to_value`] draw from, so the
    /// human and machine renderings cannot diverge.
    pub fn steps(&self, program: &Program) -> Vec<String> {
        self.trace.iter().map(|&c| program.describe_cmd(c)).collect()
    }

    /// Renders the witness trace using program names.
    pub fn describe(&self, program: &Program) -> String {
        format!("[{}] final: {}", self.steps(program).join(" <- "), self.final_query)
    }

    /// A structured JSON view of the witness (`steps` + `final_query`),
    /// suitable for embedding in machine-readable output.
    pub fn to_value(&self, program: &Program) -> obs::json::Value {
        use obs::json::Value;
        Value::Obj(vec![
            (
                "steps".to_owned(),
                Value::Arr(self.steps(program).into_iter().map(Value::str).collect()),
            ),
            ("final_query".to_owned(), Value::str(self.final_query.clone())),
        ])
    }
}

/// Why a search gave up without an answer. Every variant is *sound to
/// ignore*: an aborted edge is treated exactly like a witnessed one (not
/// refuted), so the only cost of an abort is precision, never soundness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The path-program (fork) budget was exhausted.
    ForkBudget,
    /// The straight-line command-transfer allowance was exhausted.
    WorkBudget,
    /// A cooperative wall-clock deadline expired
    /// ([`SymexConfig::edge_deadline`] / [`SymexConfig::total_deadline`]).
    ///
    /// [`SymexConfig::edge_deadline`]: crate::SymexConfig::edge_deadline
    /// [`SymexConfig::total_deadline`]: crate::SymexConfig::total_deadline
    WallClock,
    /// Upward caller propagation exceeded the hard depth cap.
    CallerDepth,
    /// A panic inside the search was caught and contained; the payload
    /// message is preserved for diagnosis.
    Panic(String),
    /// The constraint solver could not decide a query (e.g. arithmetic
    /// overflow while normalizing); treated as satisfiable, i.e. the path
    /// stays alive and the edge is not refuted.
    SolverFailure,
    /// A query exceeded the hard heap-cell limit (only with
    /// [`SymexConfig::hard_heap_cap`]; the default soft cap truncates
    /// instead).
    ///
    /// [`SymexConfig::hard_heap_cap`]: crate::SymexConfig::hard_heap_cap
    HeapCap,
}

impl StopReason {
    /// Stable kebab-case key for this reason — the label used by
    /// [`AbortCounts::describe`] and parseable back via [`FromStr`]. The
    /// panic payload is not part of the key.
    ///
    /// [`FromStr`]: std::str::FromStr
    pub fn key(&self) -> &'static str {
        match self {
            StopReason::ForkBudget => "fork-budget",
            StopReason::WorkBudget => "work-budget",
            StopReason::WallClock => "wall-clock",
            StopReason::CallerDepth => "caller-depth",
            StopReason::Panic(_) => "panic",
            StopReason::SolverFailure => "solver-failure",
            StopReason::HeapCap => "heap-cap",
        }
    }

    /// The obs counter tallying aborts with this reason.
    pub fn counter(&self) -> obs::Counter {
        match self {
            StopReason::ForkBudget => obs::Counter::AbortForkBudget,
            StopReason::WorkBudget => obs::Counter::AbortWorkBudget,
            StopReason::WallClock => obs::Counter::AbortWallClock,
            StopReason::CallerDepth => obs::Counter::AbortCallerDepth,
            StopReason::Panic(_) => obs::Counter::AbortPanic,
            StopReason::SolverFailure => obs::Counter::AbortSolverFailure,
            StopReason::HeapCap => obs::Counter::AbortHeapCap,
        }
    }

    /// Every reason once (panic with an empty payload), in key order.
    pub fn all() -> [StopReason; 7] {
        [
            StopReason::ForkBudget,
            StopReason::WorkBudget,
            StopReason::WallClock,
            StopReason::CallerDepth,
            StopReason::Panic(String::new()),
            StopReason::SolverFailure,
            StopReason::HeapCap,
        ]
    }
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::ForkBudget => write!(f, "fork budget exhausted"),
            StopReason::WorkBudget => write!(f, "work budget exhausted"),
            StopReason::WallClock => write!(f, "wall-clock deadline"),
            StopReason::CallerDepth => write!(f, "caller depth cap"),
            StopReason::Panic(msg) => write!(f, "contained panic: {msg}"),
            StopReason::SolverFailure => write!(f, "solver failure"),
            StopReason::HeapCap => write!(f, "hard heap-cell cap"),
        }
    }
}

/// A [`StopReason`] rendering that could not be parsed back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseStopReasonError(String);

impl std::fmt::Display for ParseStopReasonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown stop reason {:?}", self.0)
    }
}

impl std::error::Error for ParseStopReasonError {}

impl std::str::FromStr for StopReason {
    type Err = ParseStopReasonError;

    /// Parses either the stable [`StopReason::key`] or the [`Display`]
    /// rendering, so both forms round-trip. A panic's payload survives the
    /// Display round-trip ("contained panic: msg") but not the key form.
    ///
    /// [`Display`]: std::fmt::Display
    fn from_str(s: &str) -> Result<StopReason, ParseStopReasonError> {
        if let Some(msg) = s.strip_prefix("contained panic: ") {
            return Ok(StopReason::Panic(msg.to_owned()));
        }
        Ok(match s {
            "fork-budget" | "fork budget exhausted" => StopReason::ForkBudget,
            "work-budget" | "work budget exhausted" => StopReason::WorkBudget,
            "wall-clock" | "wall-clock deadline" => StopReason::WallClock,
            "caller-depth" | "caller depth cap" => StopReason::CallerDepth,
            "panic" => StopReason::Panic(String::new()),
            "solver-failure" | "solver failure" => StopReason::SolverFailure,
            "heap-cap" | "hard heap-cell cap" => StopReason::HeapCap,
            _ => return Err(ParseStopReasonError(s.to_owned())),
        })
    }
}

/// Result of one witness-refutation search.
#[derive(Clone, Debug)]
pub enum SearchOutcome {
    /// Every path program producing the query was refuted.
    Refuted,
    /// A full (over-approximate) path-program witness was found.
    Witnessed(Witness),
    /// The search gave up for the stated reason; soundly treated as
    /// not-refuted (exactly like a witnessed edge).
    Aborted(StopReason),
}

impl SearchOutcome {
    /// True for [`SearchOutcome::Refuted`].
    pub fn is_refuted(&self) -> bool {
        matches!(self, SearchOutcome::Refuted)
    }

    /// True for [`SearchOutcome::Witnessed`].
    pub fn is_witnessed(&self) -> bool {
        matches!(self, SearchOutcome::Witnessed(_))
    }

    /// True for [`SearchOutcome::Aborted`] (historical name: every abort is
    /// treated like the paper's timeout).
    pub fn is_timeout(&self) -> bool {
        self.is_aborted()
    }

    /// True for [`SearchOutcome::Aborted`].
    pub fn is_aborted(&self) -> bool {
        matches!(self, SearchOutcome::Aborted(_))
    }

    /// The abort reason, if this outcome is an abort.
    pub fn abort_reason(&self) -> Option<&StopReason> {
        match self {
            SearchOutcome::Aborted(r) => Some(r),
            _ => None,
        }
    }
}

/// Per-reason abort counters, aggregated by drivers across edges.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AbortCounts {
    /// Aborts from fork-budget exhaustion.
    pub fork_budget: u64,
    /// Aborts from work-budget exhaustion.
    pub work_budget: u64,
    /// Aborts from wall-clock deadlines.
    pub wall_clock: u64,
    /// Aborts from the caller-depth cap.
    pub caller_depth: u64,
    /// Aborts from contained panics.
    pub panic: u64,
    /// Aborts from solver failures.
    pub solver_failure: u64,
    /// Aborts from the hard heap-cell cap.
    pub heap_cap: u64,
}

impl AbortCounts {
    /// Records one abort by reason. This is the *only* place the per-reason
    /// obs abort counters are bumped, so driver-level [`AbortCounts`] and
    /// the [`obs`] registry agree exactly by construction.
    pub fn record(&mut self, reason: &StopReason) {
        match reason {
            StopReason::ForkBudget => self.fork_budget += 1,
            StopReason::WorkBudget => self.work_budget += 1,
            StopReason::WallClock => self.wall_clock += 1,
            StopReason::CallerDepth => self.caller_depth += 1,
            StopReason::Panic(_) => self.panic += 1,
            StopReason::SolverFailure => self.solver_failure += 1,
            StopReason::HeapCap => self.heap_cap += 1,
        }
        obs::add(reason.counter(), 1);
    }

    /// Adds `other`'s counts field-wise, *without* touching the obs
    /// registry — the obs adds happened at the original [`AbortCounts::record`]
    /// call, and merging already-recorded tallies must not repeat them.
    pub fn merge(&mut self, other: &AbortCounts) {
        self.fork_budget += other.fork_budget;
        self.work_budget += other.work_budget;
        self.wall_clock += other.wall_clock;
        self.caller_depth += other.caller_depth;
        self.panic += other.panic;
        self.solver_failure += other.solver_failure;
        self.heap_cap += other.heap_cap;
    }

    /// `(stable key, count)` pairs in [`StopReason::all`] order.
    pub fn by_key(&self) -> [(&'static str, u64); 7] {
        [
            ("fork-budget", self.fork_budget),
            ("work-budget", self.work_budget),
            ("wall-clock", self.wall_clock),
            ("caller-depth", self.caller_depth),
            ("panic", self.panic),
            ("solver-failure", self.solver_failure),
            ("heap-cap", self.heap_cap),
        ]
    }

    /// Total aborts across reasons.
    pub fn total(&self) -> u64 {
        self.fork_budget
            + self.work_budget
            + self.wall_clock
            + self.caller_depth
            + self.panic
            + self.solver_failure
            + self.heap_cap
    }

    /// A compact single-line rendering of the non-zero counters. Labels are
    /// the stable [`StopReason::key`] strings, so each `label=count` part
    /// parses back to its reason.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        for (label, n) in self.by_key() {
            if n > 0 {
                parts.push(format!("{label}={n}"));
            }
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join(" ")
        }
    }
}

/// Counters accumulated across searches by one engine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Path programs (query forks) explored.
    pub path_programs: u64,
    /// Backwards command transfers applied.
    pub cmds_executed: u64,
    /// Refutations by reason.
    pub refutations: RefutationCounts,
    /// Queries dropped by history subsumption.
    pub subsumed: u64,
    /// Loop-invariant fixed points run.
    pub loop_fixpoints: u64,
    /// Calls skipped via the frame rule (irrelevant mod/ref).
    pub calls_skipped_irrelevant: u64,
    /// Calls skipped for exceeding the stack bound (constraints dropped).
    pub calls_skipped_depth: u64,
}

/// Per-reason refutation counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RefutationCounts {
    /// Empty `from` region.
    pub empty_region: u64,
    /// Separation contradictions.
    pub separation: u64,
    /// Pure-constraint contradictions.
    pub pure: u64,
    /// Pre-allocation contradictions.
    pub allocation: u64,
    /// Contradictions at program entry.
    pub entry: u64,
}

impl SearchStats {
    /// Records one refutation. Like every `SearchStats` mutator, this is
    /// the single recording site for its metric: the per-engine field and
    /// the global [`obs`] counter move together, so report totals match
    /// engine stats exactly.
    pub fn count_refutation(&mut self, r: Refuted) {
        let counter = match r {
            Refuted::EmptyRegion => {
                self.refutations.empty_region += 1;
                obs::Counter::RefutedEmptyRegion
            }
            Refuted::Separation => {
                self.refutations.separation += 1;
                obs::Counter::RefutedSeparation
            }
            Refuted::Pure => {
                self.refutations.pure += 1;
                obs::Counter::RefutedPure
            }
            Refuted::Allocation => {
                self.refutations.allocation += 1;
                obs::Counter::RefutedAllocation
            }
            Refuted::Entry => {
                self.refutations.entry += 1;
                obs::Counter::RefutedEntry
            }
        };
        obs::add(counter, 1);
    }

    /// Records `n` explored path programs (query forks).
    pub fn add_path_programs(&mut self, n: u64) {
        self.path_programs += n;
        obs::add(obs::Counter::PathPrograms, n);
    }

    /// Records one backwards command transfer.
    pub fn add_cmd_executed(&mut self) {
        self.cmds_executed += 1;
        obs::add(obs::Counter::CmdsExecuted, 1);
    }

    /// Records one query dropped by history subsumption.
    pub fn add_subsumed(&mut self) {
        self.subsumed += 1;
        obs::add(obs::Counter::Subsumed, 1);
    }

    /// Records one loop-invariant fixed point.
    pub fn add_loop_fixpoint(&mut self) {
        self.loop_fixpoints += 1;
        obs::add(obs::Counter::LoopFixpoints, 1);
    }

    /// Records one call skipped via the frame rule.
    pub fn add_call_skipped_irrelevant(&mut self) {
        self.calls_skipped_irrelevant += 1;
        obs::add(obs::Counter::CallsSkippedIrrelevant, 1);
    }

    /// Records one call skipped for exceeding the stack bound.
    pub fn add_call_skipped_depth(&mut self) {
        self.calls_skipped_depth += 1;
        obs::add(obs::Counter::CallsSkippedDepth, 1);
    }

    /// Total refutations across reasons.
    pub fn total_refutations(&self) -> u64 {
        let r = &self.refutations;
        r.empty_region + r.separation + r.pure + r.allocation + r.entry
    }

    /// The field-wise difference `self - before`. Used by the parallel
    /// scheduler to extract what one edge decision contributed to a worker
    /// engine's running totals. `before` must be an earlier snapshot of the
    /// same engine's stats (every field monotonically non-decreasing).
    pub fn delta_since(&self, before: &SearchStats) -> SearchStats {
        SearchStats {
            path_programs: self.path_programs - before.path_programs,
            cmds_executed: self.cmds_executed - before.cmds_executed,
            refutations: RefutationCounts {
                empty_region: self.refutations.empty_region - before.refutations.empty_region,
                separation: self.refutations.separation - before.refutations.separation,
                pure: self.refutations.pure - before.refutations.pure,
                allocation: self.refutations.allocation - before.refutations.allocation,
                entry: self.refutations.entry - before.refutations.entry,
            },
            subsumed: self.subsumed - before.subsumed,
            loop_fixpoints: self.loop_fixpoints - before.loop_fixpoints,
            calls_skipped_irrelevant: self.calls_skipped_irrelevant
                - before.calls_skipped_irrelevant,
            calls_skipped_depth: self.calls_skipped_depth - before.calls_skipped_depth,
        }
    }

    /// Adds `other`'s counts into `self` field-wise, *without* touching the
    /// obs registry — merging accounts numbers that were already recorded
    /// (or captured) once; double-recording them would break the
    /// single-recording-site discipline.
    pub fn merge(&mut self, other: &SearchStats) {
        self.path_programs += other.path_programs;
        self.cmds_executed += other.cmds_executed;
        self.refutations.empty_region += other.refutations.empty_region;
        self.refutations.separation += other.refutations.separation;
        self.refutations.pure += other.refutations.pure;
        self.refutations.allocation += other.refutations.allocation;
        self.refutations.entry += other.refutations.entry;
        self.subsumed += other.subsumed;
        self.loop_fixpoints += other.loop_fixpoints;
        self.calls_skipped_irrelevant += other.calls_skipped_irrelevant;
        self.calls_skipped_depth += other.calls_skipped_depth;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_predicates() {
        assert!(SearchOutcome::Refuted.is_refuted());
        let a = SearchOutcome::Aborted(StopReason::ForkBudget);
        assert!(a.is_aborted());
        assert!(a.is_timeout());
        assert_eq!(a.abort_reason(), Some(&StopReason::ForkBudget));
        let w = SearchOutcome::Witnessed(Witness { trace: Vec::new(), final_query: "any".into() });
        assert!(w.is_witnessed());
        assert!(!w.is_refuted());
        assert!(w.abort_reason().is_none());
    }

    #[test]
    fn refutation_counting() {
        let mut s = SearchStats::default();
        s.count_refutation(Refuted::Pure);
        s.count_refutation(Refuted::Pure);
        s.count_refutation(Refuted::EmptyRegion);
        assert_eq!(s.refutations.pure, 2);
        assert_eq!(s.total_refutations(), 3);
    }

    #[test]
    fn abort_counts_record_and_describe() {
        let mut a = AbortCounts::default();
        assert_eq!(a.describe(), "none");
        a.record(&StopReason::ForkBudget);
        a.record(&StopReason::ForkBudget);
        a.record(&StopReason::Panic("boom".into()));
        assert_eq!(a.fork_budget, 2);
        assert_eq!(a.panic, 1);
        assert_eq!(a.total(), 3);
        assert_eq!(a.describe(), "fork-budget=2 panic=1");
        a.record(&StopReason::SolverFailure);
        assert_eq!(a.describe(), "fork-budget=2 panic=1 solver-failure=1");
    }

    #[test]
    fn stop_reason_display() {
        assert_eq!(StopReason::WallClock.to_string(), "wall-clock deadline");
        assert_eq!(
            StopReason::Panic("index out of bounds".into()).to_string(),
            "contained panic: index out of bounds"
        );
    }

    #[test]
    fn stop_reason_round_trips() {
        for reason in StopReason::all() {
            // Key form round-trips every variant (panic loses its payload).
            assert_eq!(reason.key().parse::<StopReason>().as_ref(), Ok(&reason), "{reason:?}");
            // Display form round-trips too, payload included.
            assert_eq!(reason.to_string().parse::<StopReason>().as_ref(), Ok(&reason));
        }
        let p = StopReason::Panic("boom: nested".into());
        assert_eq!(p.to_string().parse::<StopReason>(), Ok(p.clone()));
        assert_eq!(p.key().parse::<StopReason>(), Ok(StopReason::Panic(String::new())));
        assert!("never heard of it".parse::<StopReason>().is_err());
        // Describe labels are exactly the parseable keys.
        let a = AbortCounts { solver_failure: 1, ..AbortCounts::default() };
        for part in a.describe().split(' ') {
            let (label, _) = part.split_once('=').expect("label=count");
            assert!(label.parse::<StopReason>().is_ok(), "{label}");
        }
    }

    #[test]
    fn abort_keys_match_stop_reasons() {
        let a = AbortCounts::default();
        for ((label, _), reason) in a.by_key().iter().zip(StopReason::all()) {
            assert_eq!(*label, reason.key());
        }
    }

    #[test]
    fn witness_describe_and_value_agree() {
        let p: Program = tir::parse(
            r#"
fn main() {
  var o: Object;
  o = new Object @obj0;
}
entry main;
"#,
        )
        .expect("parse");
        let cmd = p.method_ids().flat_map(|m| p.method_cmds(m)).next().expect("a command");
        let w = Witness { trace: vec![cmd], final_query: "final state".into() };
        let described = w.describe(&p);
        let v = w.to_value(&p);
        let steps = v.get("steps").and_then(obs::json::Value::as_arr).expect("steps");
        assert_eq!(steps.len(), 1);
        // Every structured step appears verbatim in the human rendering.
        for s in steps {
            assert!(described.contains(s.as_str().unwrap()), "{described}");
        }
        assert_eq!(v.get("final_query").and_then(obs::json::Value::as_str), Some("final state"));
        assert!(described.ends_with("final: final state"));
    }
}
