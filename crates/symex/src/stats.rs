//! Search outcomes, witnesses, and statistics.

use tir::{CmdId, Program};

use crate::query::Refuted;

/// A path program witnessing a query: the reverse-order trace of commands
/// the backwards search traversed from the producing statement to the point
/// where the query was discharged.
#[derive(Clone, Debug)]
pub struct Witness {
    /// Commands traversed, most recent (closest to discharge) last.
    pub trace: Vec<CmdId>,
    /// Rendering of the final (discharged or entry) query.
    pub final_query: String,
}

impl Witness {
    /// Renders the witness trace using program names.
    pub fn describe(&self, program: &Program) -> String {
        let steps: Vec<String> =
            self.trace.iter().map(|&c| program.describe_cmd(c)).collect();
        format!("[{}] final: {}", steps.join(" <- "), self.final_query)
    }
}

/// Result of one witness-refutation search.
#[derive(Clone, Debug)]
pub enum SearchOutcome {
    /// Every path program producing the query was refuted.
    Refuted,
    /// A full (over-approximate) path-program witness was found.
    Witnessed(Witness),
    /// The exploration budget was exhausted; soundly treated as
    /// not-refuted.
    Timeout,
}

impl SearchOutcome {
    /// True for [`SearchOutcome::Refuted`].
    pub fn is_refuted(&self) -> bool {
        matches!(self, SearchOutcome::Refuted)
    }

    /// True for [`SearchOutcome::Witnessed`].
    pub fn is_witnessed(&self) -> bool {
        matches!(self, SearchOutcome::Witnessed(_))
    }

    /// True for [`SearchOutcome::Timeout`].
    pub fn is_timeout(&self) -> bool {
        matches!(self, SearchOutcome::Timeout)
    }
}

/// Counters accumulated across searches by one engine.
#[derive(Clone, Debug, Default)]
pub struct SearchStats {
    /// Path programs (query forks) explored.
    pub path_programs: u64,
    /// Backwards command transfers applied.
    pub cmds_executed: u64,
    /// Refutations by reason.
    pub refutations: RefutationCounts,
    /// Queries dropped by history subsumption.
    pub subsumed: u64,
    /// Loop-invariant fixed points run.
    pub loop_fixpoints: u64,
    /// Calls skipped via the frame rule (irrelevant mod/ref).
    pub calls_skipped_irrelevant: u64,
    /// Calls skipped for exceeding the stack bound (constraints dropped).
    pub calls_skipped_depth: u64,
}

/// Per-reason refutation counters.
#[derive(Clone, Debug, Default)]
pub struct RefutationCounts {
    /// Empty `from` region.
    pub empty_region: u64,
    /// Separation contradictions.
    pub separation: u64,
    /// Pure-constraint contradictions.
    pub pure: u64,
    /// Pre-allocation contradictions.
    pub allocation: u64,
    /// Contradictions at program entry.
    pub entry: u64,
}

impl SearchStats {
    /// Records one refutation.
    pub fn count_refutation(&mut self, r: Refuted) {
        match r {
            Refuted::EmptyRegion => self.refutations.empty_region += 1,
            Refuted::Separation => self.refutations.separation += 1,
            Refuted::Pure => self.refutations.pure += 1,
            Refuted::Allocation => self.refutations.allocation += 1,
            Refuted::Entry => self.refutations.entry += 1,
        }
    }

    /// Total refutations across reasons.
    pub fn total_refutations(&self) -> u64 {
        let r = &self.refutations;
        r.empty_region + r.separation + r.pure + r.allocation + r.entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_predicates() {
        assert!(SearchOutcome::Refuted.is_refuted());
        assert!(SearchOutcome::Timeout.is_timeout());
        let w = SearchOutcome::Witnessed(Witness { trace: Vec::new(), final_query: "any".into() });
        assert!(w.is_witnessed());
        assert!(!w.is_refuted());
    }

    #[test]
    fn refutation_counting() {
        let mut s = SearchStats::default();
        s.count_refutation(Refuted::Pure);
        s.count_refutation(Refuted::Pure);
        s.count_refutation(Refuted::EmptyRegion);
        assert_eq!(s.refutations.pure, 2);
        assert_eq!(s.total_refutations(), 3);
    }
}
