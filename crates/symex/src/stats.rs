//! Search outcomes, abort provenance, witnesses, and statistics.

use tir::{CmdId, Program};

use crate::query::Refuted;

/// A path program witnessing a query: the reverse-order trace of commands
/// the backwards search traversed from the producing statement to the point
/// where the query was discharged.
#[derive(Clone, Debug)]
pub struct Witness {
    /// Commands traversed, most recent (closest to discharge) last.
    pub trace: Vec<CmdId>,
    /// Rendering of the final (discharged or entry) query.
    pub final_query: String,
}

impl Witness {
    /// Renders the witness trace using program names.
    pub fn describe(&self, program: &Program) -> String {
        let steps: Vec<String> = self.trace.iter().map(|&c| program.describe_cmd(c)).collect();
        format!("[{}] final: {}", steps.join(" <- "), self.final_query)
    }
}

/// Why a search gave up without an answer. Every variant is *sound to
/// ignore*: an aborted edge is treated exactly like a witnessed one (not
/// refuted), so the only cost of an abort is precision, never soundness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The path-program (fork) budget was exhausted.
    ForkBudget,
    /// The straight-line command-transfer allowance was exhausted.
    WorkBudget,
    /// A cooperative wall-clock deadline expired
    /// ([`SymexConfig::edge_deadline`] / [`SymexConfig::total_deadline`]).
    ///
    /// [`SymexConfig::edge_deadline`]: crate::SymexConfig::edge_deadline
    /// [`SymexConfig::total_deadline`]: crate::SymexConfig::total_deadline
    WallClock,
    /// Upward caller propagation exceeded the hard depth cap.
    CallerDepth,
    /// A panic inside the search was caught and contained; the payload
    /// message is preserved for diagnosis.
    Panic(String),
    /// The constraint solver could not decide a query (e.g. arithmetic
    /// overflow while normalizing); treated as satisfiable, i.e. the path
    /// stays alive and the edge is not refuted.
    SolverFailure,
    /// A query exceeded the hard heap-cell limit (only with
    /// [`SymexConfig::hard_heap_cap`]; the default soft cap truncates
    /// instead).
    ///
    /// [`SymexConfig::hard_heap_cap`]: crate::SymexConfig::hard_heap_cap
    HeapCap,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::ForkBudget => write!(f, "fork budget exhausted"),
            StopReason::WorkBudget => write!(f, "work budget exhausted"),
            StopReason::WallClock => write!(f, "wall-clock deadline"),
            StopReason::CallerDepth => write!(f, "caller depth cap"),
            StopReason::Panic(msg) => write!(f, "contained panic: {msg}"),
            StopReason::SolverFailure => write!(f, "solver failure"),
            StopReason::HeapCap => write!(f, "hard heap-cell cap"),
        }
    }
}

/// Result of one witness-refutation search.
#[derive(Clone, Debug)]
pub enum SearchOutcome {
    /// Every path program producing the query was refuted.
    Refuted,
    /// A full (over-approximate) path-program witness was found.
    Witnessed(Witness),
    /// The search gave up for the stated reason; soundly treated as
    /// not-refuted (exactly like a witnessed edge).
    Aborted(StopReason),
}

impl SearchOutcome {
    /// True for [`SearchOutcome::Refuted`].
    pub fn is_refuted(&self) -> bool {
        matches!(self, SearchOutcome::Refuted)
    }

    /// True for [`SearchOutcome::Witnessed`].
    pub fn is_witnessed(&self) -> bool {
        matches!(self, SearchOutcome::Witnessed(_))
    }

    /// True for [`SearchOutcome::Aborted`] (historical name: every abort is
    /// treated like the paper's timeout).
    pub fn is_timeout(&self) -> bool {
        self.is_aborted()
    }

    /// True for [`SearchOutcome::Aborted`].
    pub fn is_aborted(&self) -> bool {
        matches!(self, SearchOutcome::Aborted(_))
    }

    /// The abort reason, if this outcome is an abort.
    pub fn abort_reason(&self) -> Option<&StopReason> {
        match self {
            SearchOutcome::Aborted(r) => Some(r),
            _ => None,
        }
    }
}

/// Per-reason abort counters, aggregated by drivers across edges.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AbortCounts {
    /// Aborts from fork-budget exhaustion.
    pub fork_budget: u64,
    /// Aborts from work-budget exhaustion.
    pub work_budget: u64,
    /// Aborts from wall-clock deadlines.
    pub wall_clock: u64,
    /// Aborts from the caller-depth cap.
    pub caller_depth: u64,
    /// Aborts from contained panics.
    pub panic: u64,
    /// Aborts from solver failures.
    pub solver_failure: u64,
    /// Aborts from the hard heap-cell cap.
    pub heap_cap: u64,
}

impl AbortCounts {
    /// Records one abort by reason.
    pub fn record(&mut self, reason: &StopReason) {
        match reason {
            StopReason::ForkBudget => self.fork_budget += 1,
            StopReason::WorkBudget => self.work_budget += 1,
            StopReason::WallClock => self.wall_clock += 1,
            StopReason::CallerDepth => self.caller_depth += 1,
            StopReason::Panic(_) => self.panic += 1,
            StopReason::SolverFailure => self.solver_failure += 1,
            StopReason::HeapCap => self.heap_cap += 1,
        }
    }

    /// Total aborts across reasons.
    pub fn total(&self) -> u64 {
        self.fork_budget
            + self.work_budget
            + self.wall_clock
            + self.caller_depth
            + self.panic
            + self.solver_failure
            + self.heap_cap
    }

    /// A compact single-line rendering of the non-zero counters.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        for (n, label) in [
            (self.fork_budget, "fork-budget"),
            (self.work_budget, "work-budget"),
            (self.wall_clock, "wall-clock"),
            (self.caller_depth, "caller-depth"),
            (self.panic, "panic"),
            (self.solver_failure, "solver"),
            (self.heap_cap, "heap-cap"),
        ] {
            if n > 0 {
                parts.push(format!("{label}={n}"));
            }
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join(" ")
        }
    }
}

/// Counters accumulated across searches by one engine.
#[derive(Clone, Debug, Default)]
pub struct SearchStats {
    /// Path programs (query forks) explored.
    pub path_programs: u64,
    /// Backwards command transfers applied.
    pub cmds_executed: u64,
    /// Refutations by reason.
    pub refutations: RefutationCounts,
    /// Queries dropped by history subsumption.
    pub subsumed: u64,
    /// Loop-invariant fixed points run.
    pub loop_fixpoints: u64,
    /// Calls skipped via the frame rule (irrelevant mod/ref).
    pub calls_skipped_irrelevant: u64,
    /// Calls skipped for exceeding the stack bound (constraints dropped).
    pub calls_skipped_depth: u64,
}

/// Per-reason refutation counters.
#[derive(Clone, Debug, Default)]
pub struct RefutationCounts {
    /// Empty `from` region.
    pub empty_region: u64,
    /// Separation contradictions.
    pub separation: u64,
    /// Pure-constraint contradictions.
    pub pure: u64,
    /// Pre-allocation contradictions.
    pub allocation: u64,
    /// Contradictions at program entry.
    pub entry: u64,
}

impl SearchStats {
    /// Records one refutation.
    pub fn count_refutation(&mut self, r: Refuted) {
        match r {
            Refuted::EmptyRegion => self.refutations.empty_region += 1,
            Refuted::Separation => self.refutations.separation += 1,
            Refuted::Pure => self.refutations.pure += 1,
            Refuted::Allocation => self.refutations.allocation += 1,
            Refuted::Entry => self.refutations.entry += 1,
        }
    }

    /// Total refutations across reasons.
    pub fn total_refutations(&self) -> u64 {
        let r = &self.refutations;
        r.empty_region + r.separation + r.pure + r.allocation + r.entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_predicates() {
        assert!(SearchOutcome::Refuted.is_refuted());
        let a = SearchOutcome::Aborted(StopReason::ForkBudget);
        assert!(a.is_aborted());
        assert!(a.is_timeout());
        assert_eq!(a.abort_reason(), Some(&StopReason::ForkBudget));
        let w = SearchOutcome::Witnessed(Witness { trace: Vec::new(), final_query: "any".into() });
        assert!(w.is_witnessed());
        assert!(!w.is_refuted());
        assert!(w.abort_reason().is_none());
    }

    #[test]
    fn refutation_counting() {
        let mut s = SearchStats::default();
        s.count_refutation(Refuted::Pure);
        s.count_refutation(Refuted::Pure);
        s.count_refutation(Refuted::EmptyRegion);
        assert_eq!(s.refutations.pure, 2);
        assert_eq!(s.total_refutations(), 3);
    }

    #[test]
    fn abort_counts_record_and_describe() {
        let mut a = AbortCounts::default();
        assert_eq!(a.describe(), "none");
        a.record(&StopReason::ForkBudget);
        a.record(&StopReason::ForkBudget);
        a.record(&StopReason::Panic("boom".into()));
        assert_eq!(a.fork_budget, 2);
        assert_eq!(a.panic, 1);
        assert_eq!(a.total(), 3);
        assert_eq!(a.describe(), "fork-budget=2 panic=1");
    }

    #[test]
    fn stop_reason_display() {
        assert_eq!(StopReason::WallClock.to_string(), "wall-clock deadline");
        assert_eq!(
            StopReason::Panic("index out of bounds".into()).to_string(),
            "contained panic: index out of bounds"
        );
    }
}
