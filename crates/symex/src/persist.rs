//! Persistent cross-run refutation cache (`thresher.cache/1`).
//!
//! Edge decisions are pure functions of the program slice they examine,
//! so they survive across processes: every decision the coordinator
//! commits can be written through to an append-only JSONL store keyed by
//! a content fingerprint, and a later run reuses any record whose
//! fingerprint still matches. The fingerprint covers everything a search
//! consults — the edge itself, its producer commands, the
//! precision-relevant engine configuration, and the canonical printed
//! text plus local points-to facts of every method in the edge's
//! call-graph slice — so editing one method invalidates exactly the
//! decisions whose slice contains it (or whose points-to facts it
//! shifts) and nothing else. See DESIGN.md §14 for the invalidation
//! soundness argument.
//!
//! # Store format
//!
//! One JSONL file (`decisions.jsonl`) per cache directory. The first
//! line is a header `{"schema":"thresher.cache/1"}`; every other line is
//! one decision record serialized with [`obs::json`]. Corruption
//! degrades, never propagates: an unparseable or unresolvable line is
//! skipped (counted under [`obs::Counter::CacheSkippedCorrupt`]), a
//! truncated tail is just another skipped line, and a header mismatch
//! discards the whole file — every failure mode falls back to a cold
//! computation through the engine's existing resilience ladder, never a
//! panic and never a wrong answer.
//!
//! # Identity across runs
//!
//! Nothing in a record or a fingerprint uses a numeric id: edges are
//! rendered through canonical location/global/field names, methods
//! through their canonical `Class.name` text, and witness traces as
//! `(method name, command ordinal)` pairs resolved against the current
//! program at load. Records therefore survive print/parse round trips
//! and edits to unrelated methods, which renumber ids but preserve
//! names.

use std::collections::{HashMap, HashSet};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

use obs::json::Value;
use obs::{Counter, Hist, MetricsDelta};
use pta::{HeapEdge, LocId, PtaResult};
use tir::{CmdId, MethodId, Program};

use crate::engine::EdgeDecision;
use crate::key::RefKey;
use crate::stats::{RefutationCounts, SearchOutcome, SearchStats, StopReason, Witness};
use crate::SymexConfig;

/// The store schema identifier; a mismatch discards the whole file.
pub const CACHE_SCHEMA: &str = "thresher.cache/1";

/// File name of the decision store inside a cache directory.
pub const CACHE_FILE: &str = "decisions.jsonl";

/// File name of the advisory write lock inside a cache directory.
pub const LOCK_FILE: &str = "decisions.lock";

/// Scratch file used by compaction; a leftover one (from a crash mid-
/// compaction) is ignored by readers and removed at the next open.
pub const TMP_FILE: &str = "decisions.jsonl.tmp";

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// FNV-1a content hashing
// ---------------------------------------------------------------------------

/// Incremental FNV-1a 64-bit hasher (zero-dependency, stable across
/// platforms and runs — unlike `DefaultHasher`, whose seed varies).
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        // Length-prefix-free framing: a NUL cannot appear in IR text, so
        // adjacent fields cannot be confused by concatenation.
        self.write(&[0]);
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

/// Computes content fingerprints for edge decisions over one analyzed
/// program. Per-method content hashes are precomputed; per-edge
/// fingerprints are memoized behind a mutex so coordinator and workers
/// can share one instance.
pub struct Fingerprinter<'a> {
    program: &'a Program,
    pta: &'a PtaResult,
    /// Canonical rendering of every precision-relevant config field.
    config_key: String,
    /// Per-method content hash, indexed by `MethodId`.
    method_hash: Vec<u64>,
    memo: Mutex<HashMap<RefKey, u64>>,
}

/// Cross-edit cache of per-method content hashes, keyed by canonical
/// method name (names survive the id renumbering an edit causes; ids do
/// not). After an edit-delta solve, only methods reported changed by
/// [`pta::EditSolveStats::changed_methods`] — plus methods new to the
/// cache — need re-hashing; every other method's hash is reused, so
/// fingerprinting cost tracks the size of the *edit*, not the program.
///
/// Reuse is sound because [`Fingerprinter::hash_method`] reads only
/// renumbering-stable inputs (printed text, canonical location names,
/// callee names), and `changed_methods` conservatively covers every
/// method whose points-to facts or call targets moved.
#[derive(Debug, Default)]
pub struct MethodHashCache {
    by_name: HashMap<String, u64>,
    hits: u64,
    recomputed: u64,
}

impl MethodHashCache {
    /// An empty cache; the first [`Fingerprinter::with_cache`] call fills
    /// it by hashing every method.
    pub fn new() -> Self {
        MethodHashCache::default()
    }

    /// Hashes served from the cache across all `with_cache` calls.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Hashes recomputed (changed, new, or cold) across all calls.
    pub fn recomputed(&self) -> u64 {
        self.recomputed
    }

    /// Methods currently hashed.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// True if no method has been hashed yet.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }
}

impl<'a> Fingerprinter<'a> {
    /// Builds a fingerprinter, hashing every method's canonical content
    /// up front.
    pub fn new(program: &'a Program, pta: &'a PtaResult, config: &SymexConfig) -> Self {
        let method_hash =
            program.method_ids().map(|m| Self::hash_method(program, pta, m)).collect();
        Fingerprinter {
            program,
            pta,
            config_key: config_fingerprint_key(config),
            method_hash,
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// Like [`Fingerprinter::new`], but reuses cached per-method hashes
    /// for every method *not* named in `changed`. The cache is refreshed
    /// in place to exactly the current program's methods (hashes of
    /// removed methods are dropped).
    pub fn with_cache(
        program: &'a Program,
        pta: &'a PtaResult,
        config: &SymexConfig,
        cache: &mut MethodHashCache,
        changed: &[MethodId],
    ) -> Self {
        let changed: HashSet<String> = changed.iter().map(|&m| program.method_name(m)).collect();
        let mut next = HashMap::new();
        let method_hash = program
            .method_ids()
            .map(|m| {
                let name = program.method_name(m);
                let h = match cache.by_name.get(&name) {
                    Some(&h) if !changed.contains(&name) => {
                        cache.hits += 1;
                        h
                    }
                    _ => {
                        cache.recomputed += 1;
                        Self::hash_method(program, pta, m)
                    }
                };
                next.insert(name, h);
                h
            })
            .collect();
        cache.by_name = next;
        Fingerprinter {
            program,
            pta,
            config_key: config_fingerprint_key(config),
            method_hash,
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// The canonical content hash of one method: its printed text plus
    /// the points-to facts the search may consult while inside it (the
    /// from-set of every local, and the dispatch targets of every call).
    /// Any points-to shift that can influence a search through this
    /// method shows up in some local's from-set, because Andersen's
    /// closure folds loaded globals and fields into the loading local.
    fn hash_method(program: &Program, pta: &PtaResult, m: MethodId) -> u64 {
        let mut h = Fnv::new();
        h.write_str(&program.method_name(m));
        h.write_str(&tir::print_method_text(program, m));
        for &v in &program.method(m).locals {
            h.write_str(&program.var(v).name);
            let mut names: Vec<String> =
                pta.pt_var(v).iter().map(|i| pta.loc_name(program, LocId(i as u32))).collect();
            names.sort_unstable();
            for n in &names {
                h.write_str(n);
            }
        }
        for c in program.method_cmds(m) {
            for &t in pta.call_targets(c) {
                h.write_str(&program.method_name(t));
            }
        }
        h.finish()
    }

    /// Canonical, id-free description of an edge — the invalidation key
    /// linking records for the *same* edge across fingerprint changes.
    pub fn edge_key(&self, edge: &HeapEdge) -> String {
        let p = self.program;
        match edge {
            HeapEdge::Global { global, target } => {
                format!("${} => {}", p.global(*global).name, self.pta.loc_name(p, *target))
            }
            HeapEdge::Field { base, field, target } => {
                let f = p.field(*field);
                format!(
                    "{}.{}::{} => {}",
                    self.pta.loc_name(p, *base),
                    p.class(f.owner).name,
                    f.name,
                    self.pta.loc_name(p, *target)
                )
            }
        }
    }

    /// Canonical, id-free description of any [`RefKey`]. Deref sites are
    /// keyed by method name, command ordinal within the method, and base
    /// variable name — all stable across the id renumbering an edit
    /// causes (any edit that *moves* the command within its method also
    /// changes the method's content hash, so the fingerprint catches it).
    pub fn key_string(&self, key: &RefKey) -> String {
        match key {
            RefKey::Edge(e) => self.edge_key(e),
            RefKey::Deref(s) => {
                let p = self.program;
                let m = p.cmd_method(s.cmd);
                let ordinal = p
                    .method_cmds(m)
                    .iter()
                    .position(|&c| c == s.cmd)
                    .expect("deref command in its own method");
                format!("deref {}#{} {}", p.method_name(m), ordinal, p.var(s.base).name)
            }
        }
    }

    /// The edge's mod-ref/call-graph slice: every method transitively
    /// reachable from the producers' methods along the call graph, in
    /// either direction (callees the search may enter, callers it may
    /// propagate into). Sorted by canonical method name.
    pub fn slice(&self, edge: &HeapEdge) -> Vec<MethodId> {
        self.slice_from(self.pta.producers(edge).iter().map(|&c| self.program.cmd_method(c)))
    }

    /// The call-graph slice seeded from an arbitrary set of methods (deref
    /// queries are seeded from the method containing the dereference).
    fn slice_from(&self, seeds: impl Iterator<Item = MethodId>) -> Vec<MethodId> {
        let mut set = HashSet::new();
        let mut work = Vec::new();
        for m in seeds {
            if set.insert(m) {
                work.push(m);
            }
        }
        while let Some(m) = work.pop() {
            for c in self.program.method_cmds(m) {
                for &t in self.pta.call_targets(c) {
                    if set.insert(t) {
                        work.push(t);
                    }
                }
            }
            for &c in self.pta.callers(m) {
                let cm = self.program.cmd_method(c);
                if set.insert(cm) {
                    work.push(cm);
                }
            }
        }
        let mut v: Vec<MethodId> = set.into_iter().collect();
        v.sort_by_key(|&m| self.program.method_name(m));
        v
    }

    /// The content fingerprint keying this edge's decision record:
    /// FNV-1a over the edge key, every producer command's rendering, the
    /// config key, and every slice method's (name, content hash) pair.
    pub fn fingerprint(&self, edge: &HeapEdge) -> u64 {
        self.fingerprint_key(&RefKey::Edge(*edge))
    }

    /// [`Fingerprinter::fingerprint`] generalized over [`RefKey`]: deref
    /// fingerprints cover the key string, the dereferencing command's
    /// rendering, the config key, and the slice seeded from the method
    /// containing the dereference.
    pub fn fingerprint_key(&self, key: &RefKey) -> u64 {
        if let Some(&fp) = lock(&self.memo).get(key) {
            return fp;
        }
        let mut h = Fnv::new();
        h.write_str(CACHE_SCHEMA);
        h.write_str(&self.key_string(key));
        let slice = match key {
            RefKey::Edge(edge) => {
                for &c in self.pta.producers(edge) {
                    h.write_str(&self.program.method_name(self.program.cmd_method(c)));
                    h.write_str(&tir::print_cmd(self.program, self.program.cmd(c)));
                }
                self.slice(edge)
            }
            RefKey::Deref(site) => {
                let m = self.program.cmd_method(site.cmd);
                h.write_str(&self.program.method_name(m));
                h.write_str(&tir::print_cmd(self.program, self.program.cmd(site.cmd)));
                self.slice_from(std::iter::once(m))
            }
        };
        h.write_str(&self.config_key);
        for m in slice {
            h.write_str(&self.program.method_name(m));
            h.write_u64(self.method_hash[m.index()]);
        }
        let fp = h.finish();
        lock(&self.memo).insert(*key, fp);
        fp
    }
}

/// Canonical rendering of every [`SymexConfig`] field that can change a
/// decision. All fields participate — including the deadlines and the
/// fault-injection hook — so a record is only ever reused under the
/// exact configuration that produced it.
fn config_fingerprint_key(c: &SymexConfig) -> String {
    format!(
        "repr={:?};loop={:?};simp={};budget={};call_depth={};path_atoms={};iter_cap={};\
         mat_bound={};trace_cap={};heap_cells={};edge_deadline={:?};total_deadline={:?};\
         degrade={};null_guards={};hard_heap_cap={};inject={:?}",
        c.representation,
        c.loop_mode,
        c.simplification,
        c.budget,
        c.max_call_depth,
        c.max_path_atoms,
        c.loop_iter_cap,
        c.materialization_bound,
        c.trace_cap,
        c.max_heap_cells,
        c.edge_deadline,
        c.total_deadline,
        c.degrade,
        c.track_null_guards,
        c.hard_heap_cap,
        c.inject_panic_on_new,
    )
}

// ---------------------------------------------------------------------------
// Store
// ---------------------------------------------------------------------------

/// Cache access policy for [`DecisionStore`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CacheMode {
    /// Read existing records and append newly committed decisions.
    #[default]
    ReadWrite,
    /// Read existing records; never write.
    Read,
    /// Ignore the cache entirely (no store is opened).
    Off,
}

impl std::str::FromStr for CacheMode {
    type Err = String;

    fn from_str(s: &str) -> Result<CacheMode, String> {
        match s {
            "read-write" => Ok(CacheMode::ReadWrite),
            "read" => Ok(CacheMode::Read),
            "off" => Ok(CacheMode::Off),
            other => Err(format!("unknown cache mode {other:?} (read-write|read|off)")),
        }
    }
}

/// Residency limits for a [`DecisionStore`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreLimits {
    /// Size cap in bytes for the backing JSONL. When an append pushes the
    /// file past the cap, the store compacts: records are rewritten
    /// most-recently-hit first until the file fits in half the cap
    /// (hysteresis), and the remainder are dropped — they are pure
    /// decisions, so a dropped record only means one future recomputation,
    /// never a changed answer. `None` (the default) leaves growth
    /// unbounded.
    pub max_bytes: Option<u64>,
}

impl StoreLimits {
    /// Limits with a byte cap on the backing file.
    pub fn with_max_bytes(bytes: u64) -> Self {
        StoreLimits { max_bytes: Some(bytes) }
    }
}

/// Everything one committed edge decision produced — the persisted
/// mirror of the scheduler's in-memory cache entry. Replaying `obs` and
/// merging `stats` at commit reproduces the cold run's report exactly.
#[derive(Clone)]
pub struct PersistedDecision {
    /// The decision (outcome, attempts, degradation flag).
    pub decision: EdgeDecision,
    /// Engine-statistics delta of the original computation.
    pub stats: SearchStats,
    /// Buffered metrics of the original computation.
    pub obs: MetricsDelta,
    /// Compute time of the original computation.
    pub elapsed: Duration,
}

struct StoreInner {
    records: HashMap<u64, PersistedDecision>,
    /// Edge key → fingerprints present, for stale-record (invalidation)
    /// detection.
    edge_fps: HashMap<String, HashSet<u64>>,
    /// Fingerprint → edge key, so compaction can re-serialize records.
    fp_edge: HashMap<u64, String>,
    /// Fingerprint → last-hit generation, the compaction eviction order.
    hit_gen: HashMap<u64, u64>,
    /// Monotonic lookup generation.
    gen: u64,
    /// Current byte length of the backing file (tracked, not re-stat'ed).
    bytes: u64,
    file: Option<std::fs::File>,
}

/// The on-disk decision store: a versioned, append-only JSONL file of
/// fingerprint-keyed decision records, loaded (and resolved against the
/// current program) once at open. Thread-safe; lookups clone.
///
/// Read-write opens take an advisory lock file ([`LOCK_FILE`]) so two
/// processes can never interleave appends into one JSONL: the loser
/// degrades to read-only (counted under
/// [`Counter::CacheLockContended`]) instead of corrupting the store. A
/// lock left behind by a dead process (crash, `kill -9`) is detected by
/// pid liveness and stolen.
pub struct DecisionStore {
    mode: CacheMode,
    path: PathBuf,
    skipped_corrupt: u64,
    limits: StoreLimits,
    /// The lock file this store owns (removed on drop), if any.
    lock_path: Option<PathBuf>,
    /// True when a read-write open lost the lock and degraded to read.
    lock_contended: bool,
    inner: Mutex<StoreInner>,
}

impl DecisionStore {
    /// Opens (and in read-write mode creates) the store under `dir`,
    /// loading every resolvable record. Corrupt lines are skipped and
    /// counted — once, here, under [`Counter::CacheSkippedCorrupt`] — and
    /// a header mismatch discards the whole file (rewritten fresh in
    /// read-write mode). Only I/O that makes the store unusable (an
    /// uncreatable directory, an unopenable append handle) errors.
    pub fn open(dir: &Path, mode: CacheMode, program: &Program) -> std::io::Result<DecisionStore> {
        Self::open_with_limits(dir, mode, program, StoreLimits::default())
    }

    /// [`DecisionStore::open`] with explicit residency limits (see
    /// [`StoreLimits`]).
    pub fn open_with_limits(
        dir: &Path,
        mode: CacheMode,
        program: &Program,
        limits: StoreLimits,
    ) -> std::io::Result<DecisionStore> {
        assert!(mode != CacheMode::Off, "CacheMode::Off opens no store");
        let mut mode = mode;
        let mut lock_path = None;
        let mut lock_contended = false;
        if mode == CacheMode::ReadWrite {
            std::fs::create_dir_all(dir)?;
            // A leftover compaction scratch file (crash mid-compaction)
            // is never read; clear it so it cannot accumulate.
            let _ = std::fs::remove_file(dir.join(TMP_FILE));
            match acquire_lock(dir) {
                Some(p) => lock_path = Some(p),
                None => {
                    // Another live process owns the store: degrade to
                    // read-only instead of risking interleaved appends.
                    mode = CacheMode::Read;
                    lock_contended = true;
                    obs::add(Counter::CacheLockContended, 1);
                }
            }
        }
        let path = dir.join(CACHE_FILE);
        let resolver = MethodResolver::new(program);
        let mut records = HashMap::new();
        let mut edge_fps: HashMap<String, HashSet<u64>> = HashMap::new();
        let mut skipped = 0u64;
        let mut discard_file = false;
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let mut lines = text.lines();
                match lines.next() {
                    Some(header) if header_ok(header) => {
                        for line in lines {
                            if line.trim().is_empty() {
                                continue;
                            }
                            match parse_record(program, &resolver, line) {
                                Some((fp, edge_key, d)) => {
                                    edge_fps.entry(edge_key).or_default().insert(fp);
                                    records.insert(fp, d);
                                }
                                None => skipped += 1,
                            }
                        }
                    }
                    Some(_) => {
                        // Version/schema mismatch: the whole file is
                        // unusable. Degrade to cold; start fresh on write.
                        skipped += 1;
                        discard_file = true;
                    }
                    None => {}
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(_) => {
                // Unreadable (permissions, I/O error): degrade to cold.
                skipped += 1;
                discard_file = true;
            }
        }
        let mut bytes = 0u64;
        let file = if mode == CacheMode::ReadWrite {
            let fresh = discard_file || !path.exists();
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(!fresh)
                .write(true)
                .truncate(fresh)
                .open(&path)?;
            if fresh {
                writeln!(f, "{}", header_line())?;
            }
            bytes = f.metadata().map(|m| m.len()).unwrap_or(0);
            Some(f)
        } else {
            None
        };
        if skipped > 0 {
            obs::add(Counter::CacheSkippedCorrupt, skipped);
        }
        let fp_edge: HashMap<u64, String> = edge_fps
            .iter()
            .flat_map(|(key, fps)| fps.iter().map(move |&fp| (fp, key.clone())))
            .collect();
        let hit_gen = records.keys().map(|&fp| (fp, 0)).collect();
        Ok(DecisionStore {
            mode,
            path,
            skipped_corrupt: skipped,
            limits,
            lock_path,
            lock_contended,
            inner: Mutex::new(StoreInner {
                records,
                edge_fps,
                fp_edge,
                hit_gen,
                gen: 0,
                bytes,
                file,
            }),
        })
    }

    /// The store's access mode.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    /// Path of the backing JSONL file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records (and files) skipped as corrupt, truncated, or
    /// version-mismatched at open.
    pub fn skipped_corrupt(&self) -> u64 {
        self.skipped_corrupt
    }

    /// True when a read-write open lost the advisory lock to another live
    /// process and degraded to read-only.
    pub fn lock_contended(&self) -> bool {
        self.lock_contended
    }

    /// The residency limits this store was opened with.
    pub fn limits(&self) -> StoreLimits {
        self.limits
    }

    /// Tracked byte length of the backing JSONL file (0 in read mode).
    pub fn file_bytes(&self) -> u64 {
        lock(&self.inner).bytes
    }

    /// Number of loaded (resolvable) records.
    pub fn len(&self) -> usize {
        lock(&self.inner).records.len()
    }

    /// True when no record loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The record stored under `fp`, if any. A hit refreshes the record's
    /// generation, protecting it from size-cap compaction.
    pub fn lookup(&self, fp: u64) -> Option<PersistedDecision> {
        let mut inner = lock(&self.inner);
        inner.gen += 1;
        let g = inner.gen;
        let d = inner.records.get(&fp).cloned();
        if d.is_some() {
            inner.hit_gen.insert(fp, g);
        }
        d
    }

    /// True when a record exists for this edge under a *different*
    /// fingerprint — i.e. an edit invalidated a previously cached
    /// decision for the same edge.
    pub fn has_stale(&self, edge_key: &str, fp: u64) -> bool {
        lock(&self.inner).edge_fps.get(edge_key).is_some_and(|s| s.iter().any(|&f| f != fp))
    }

    /// Writes one committed decision through to disk (read-write mode
    /// only; a no-op otherwise or when `fp` is already stored). A
    /// decision whose witness cannot be rendered canonically is silently
    /// not persisted — it will simply be recomputed next run.
    pub fn record(&self, program: &Program, fp: u64, edge_key: &str, d: &PersistedDecision) {
        if self.mode != CacheMode::ReadWrite {
            return;
        }
        let mut inner = lock(&self.inner);
        if inner.records.contains_key(&fp) {
            return;
        }
        let Some(value) = serialize_record(program, fp, edge_key, d) else { return };
        let line = value.to_json();
        if let Some(f) = &mut inner.file {
            // A failed append leaves the in-memory tier intact; worst
            // case the next run recomputes (and the partial line is
            // skipped as corrupt).
            let _ = writeln!(f, "{line}");
            inner.bytes += line.len() as u64 + 1;
        }
        inner.edge_fps.entry(edge_key.to_owned()).or_default().insert(fp);
        inner.fp_edge.insert(fp, edge_key.to_owned());
        inner.gen += 1;
        let g = inner.gen;
        inner.hit_gen.insert(fp, g);
        inner.records.insert(fp, d.clone());
        if self.limits.max_bytes.is_some_and(|cap| inner.bytes > cap) {
            self.compact_locked(program, &mut inner);
        }
    }

    /// Rewrites the backing file keeping records most-recently-hit first
    /// until it fits in half the size cap, dropping the rest. Writes go to
    /// a scratch file atomically renamed over the store, so a crash at any
    /// point leaves either the old or the new file — never a torn one.
    fn compact_locked(&self, program: &Program, inner: &mut StoreInner) {
        let Some(cap) = self.limits.max_bytes else { return };
        if inner.file.is_none() {
            return;
        }
        let budget = (cap / 2).max(header_line().len() as u64 + 1);
        let mut fps: Vec<u64> = inner.records.keys().copied().collect();
        fps.sort_by_key(|fp| std::cmp::Reverse(inner.hit_gen.get(fp).copied().unwrap_or(0)));
        let mut out = String::new();
        out.push_str(&header_line());
        out.push('\n');
        let mut kept = HashSet::new();
        for fp in fps {
            let Some(key) = inner.fp_edge.get(&fp) else { continue };
            let Some(d) = inner.records.get(&fp) else { continue };
            let Some(v) = serialize_record(program, fp, key, d) else { continue };
            let line = v.to_json();
            if out.len() as u64 + line.len() as u64 + 1 > budget {
                break;
            }
            out.push_str(&line);
            out.push('\n');
            kept.insert(fp);
        }
        let tmp = self.path.with_file_name(TMP_FILE);
        // Any I/O failure here keeps the current (oversized but valid)
        // file; the next append retries the compaction.
        if std::fs::write(&tmp, &out).is_err() {
            return;
        }
        if std::fs::rename(&tmp, &self.path).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        match std::fs::OpenOptions::new().append(true).open(&self.path) {
            Ok(f) => inner.file = Some(f),
            // The renamed file is intact; this store just stops appending.
            Err(_) => inner.file = None,
        }
        let dropped = (inner.records.len() - kept.len()) as u64;
        inner.records.retain(|fp, _| kept.contains(fp));
        inner.fp_edge.retain(|fp, _| kept.contains(fp));
        inner.hit_gen.retain(|fp, _| kept.contains(fp));
        for fps in inner.edge_fps.values_mut() {
            fps.retain(|fp| kept.contains(fp));
        }
        inner.edge_fps.retain(|_, fps| !fps.is_empty());
        inner.bytes = out.len() as u64;
        obs::add(Counter::CacheCompactions, 1);
        if dropped > 0 {
            obs::add(Counter::CacheRecordsDropped, dropped);
        }
    }
}

impl Drop for DecisionStore {
    fn drop(&mut self) {
        if let Some(p) = &self.lock_path {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// Tries to take the advisory write lock in `dir`: atomically creates
/// [`LOCK_FILE`] containing this process's pid. A lock whose recorded pid
/// is no longer alive (crashed owner) is stolen once. Returns the owned
/// lock path, or `None` when another live process holds it.
fn acquire_lock(dir: &Path) -> Option<PathBuf> {
    let path = dir.join(LOCK_FILE);
    for attempt in 0..2 {
        match std::fs::OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(mut f) => {
                let _ = writeln!(f, "{}", std::process::id());
                return Some(path);
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                if attempt == 0 && lock_holder_is_dead(&path) {
                    let _ = std::fs::remove_file(&path);
                    continue;
                }
                return None;
            }
            Err(_) => return None,
        }
    }
    None
}

/// True when the pid recorded in the lock file provably no longer runs.
/// Unknown (unparseable pid, non-Linux hosts) counts as alive — degrading
/// to read-only is always safe; stealing a live lock is not.
fn lock_holder_is_dead(path: &Path) -> bool {
    let Ok(text) = std::fs::read_to_string(path) else { return false };
    let Ok(pid) = text.trim().parse::<u32>() else { return false };
    if pid == std::process::id() {
        return false;
    }
    #[cfg(target_os = "linux")]
    {
        !Path::new(&format!("/proc/{pid}")).exists()
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

fn header_line() -> String {
    Value::Obj(vec![("schema".to_owned(), Value::str(CACHE_SCHEMA))]).to_json()
}

fn header_ok(line: &str) -> bool {
    obs::json::parse(line)
        .ok()
        .and_then(|v| v.get("schema").and_then(Value::as_str).map(|s| s == CACHE_SCHEMA))
        .unwrap_or(false)
}

// ---------------------------------------------------------------------------
// Record (de)serialization
// ---------------------------------------------------------------------------

/// Name-keyed method/command resolution for witness traces.
struct MethodResolver {
    by_name: HashMap<String, MethodId>,
    cmds: HashMap<MethodId, Vec<CmdId>>,
}

impl MethodResolver {
    fn new(program: &Program) -> Self {
        let mut by_name = HashMap::new();
        let mut cmds = HashMap::new();
        for m in program.method_ids() {
            by_name.insert(program.method_name(m), m);
            cmds.insert(m, program.method_cmds(m));
        }
        MethodResolver { by_name, cmds }
    }

    fn resolve(&self, name: &str, ordinal: usize) -> Option<CmdId> {
        let m = *self.by_name.get(name)?;
        self.cmds.get(&m)?.get(ordinal).copied()
    }
}

fn serialize_witness(program: &Program, w: &Witness) -> Option<Value> {
    let mut steps = Vec::with_capacity(w.trace.len());
    for &c in &w.trace {
        let m = program.cmd_method(c);
        let ordinal = program.method_cmds(m).iter().position(|&x| x == c)?;
        steps.push(Value::Arr(vec![
            Value::str(program.method_name(m)),
            Value::uint(ordinal as u64),
        ]));
    }
    Some(Value::Obj(vec![
        ("trace".to_owned(), Value::Arr(steps)),
        ("final_query".to_owned(), Value::str(w.final_query.clone())),
    ]))
}

fn parse_witness(resolver: &MethodResolver, v: &Value) -> Option<Witness> {
    let mut trace = Vec::new();
    for step in v.get("trace")?.as_arr()? {
        let pair = step.as_arr()?;
        let [name, ordinal] = pair else { return None };
        let c = resolver.resolve(name.as_str()?, usize::try_from(ordinal.as_u64()?).ok()?)?;
        trace.push(c);
    }
    let final_query = v.get("final_query")?.as_str()?.to_owned();
    Some(Witness { trace, final_query })
}

fn serialize_outcome(program: &Program, o: &SearchOutcome) -> Option<Value> {
    Some(match o {
        SearchOutcome::Refuted => Value::Obj(vec![("kind".to_owned(), Value::str("refuted"))]),
        SearchOutcome::Witnessed(w) => Value::Obj(vec![
            ("kind".to_owned(), Value::str("witnessed")),
            ("witness".to_owned(), serialize_witness(program, w)?),
        ]),
        SearchOutcome::Aborted(r) => Value::Obj(vec![
            ("kind".to_owned(), Value::str("aborted")),
            ("reason".to_owned(), Value::str(r.to_string())),
        ]),
    })
}

fn parse_outcome(resolver: &MethodResolver, v: &Value) -> Option<SearchOutcome> {
    match v.get("kind")?.as_str()? {
        "refuted" => Some(SearchOutcome::Refuted),
        "witnessed" => Some(SearchOutcome::Witnessed(parse_witness(resolver, v.get("witness")?)?)),
        "aborted" => {
            let reason: StopReason = v.get("reason")?.as_str()?.parse().ok()?;
            Some(SearchOutcome::Aborted(reason))
        }
        _ => None,
    }
}

/// Field order doubles as the schema: (name, getter) pairs shared by the
/// serializer and the parser so they cannot drift apart.
const STAT_FIELDS: [&str; 11] = [
    "path_programs",
    "cmds_executed",
    "subsumed",
    "loop_fixpoints",
    "calls_skipped_irrelevant",
    "calls_skipped_depth",
    "refuted_empty_region",
    "refuted_separation",
    "refuted_pure",
    "refuted_allocation",
    "refuted_entry",
];

fn stats_values(s: &SearchStats) -> [u64; 11] {
    [
        s.path_programs,
        s.cmds_executed,
        s.subsumed,
        s.loop_fixpoints,
        s.calls_skipped_irrelevant,
        s.calls_skipped_depth,
        s.refutations.empty_region,
        s.refutations.separation,
        s.refutations.pure,
        s.refutations.allocation,
        s.refutations.entry,
    ]
}

fn serialize_stats(s: &SearchStats) -> Value {
    Value::Obj(
        STAT_FIELDS
            .iter()
            .zip(stats_values(s))
            .map(|(&k, v)| (k.to_owned(), Value::uint(v)))
            .collect(),
    )
}

fn parse_stats(v: &Value) -> Option<SearchStats> {
    let mut n = [0u64; 11];
    for (slot, &key) in n.iter_mut().zip(STAT_FIELDS.iter()) {
        *slot = v.get(key)?.as_u64()?;
    }
    Some(SearchStats {
        path_programs: n[0],
        cmds_executed: n[1],
        subsumed: n[2],
        loop_fixpoints: n[3],
        calls_skipped_irrelevant: n[4],
        calls_skipped_depth: n[5],
        refutations: RefutationCounts {
            empty_region: n[6],
            separation: n[7],
            pure: n[8],
            allocation: n[9],
            entry: n[10],
        },
    })
}

fn serialize_delta(d: &MetricsDelta) -> Value {
    let counters = Counter::ALL
        .iter()
        .filter(|&&c| d.counter(c) > 0)
        .map(|&c| Value::Arr(vec![Value::str(c.name()), Value::uint(d.counter(c))]))
        .collect();
    let observations = d
        .observations()
        .iter()
        .map(|&(h, v)| Value::Arr(vec![Value::str(h.name()), Value::uint(v)]))
        .collect();
    Value::Obj(vec![
        ("counters".to_owned(), Value::Arr(counters)),
        ("observations".to_owned(), Value::Arr(observations)),
    ])
}

fn parse_delta(v: &Value) -> Option<MetricsDelta> {
    let mut counters = Vec::new();
    for pair in v.get("counters")?.as_arr()? {
        let [name, n] = pair.as_arr()? else { return None };
        counters.push((Counter::from_name(name.as_str()?)?, n.as_u64()?));
    }
    let mut observations = Vec::new();
    for pair in v.get("observations")?.as_arr()? {
        let [name, val] = pair.as_arr()? else { return None };
        observations.push((Hist::from_name(name.as_str()?)?, val.as_u64()?));
    }
    Some(MetricsDelta::from_parts(counters, observations))
}

fn serialize_record(
    program: &Program,
    fp: u64,
    edge_key: &str,
    d: &PersistedDecision,
) -> Option<Value> {
    Some(Value::Obj(vec![
        ("fp".to_owned(), Value::str(format!("{fp:016x}"))),
        ("edge".to_owned(), Value::str(edge_key)),
        ("outcome".to_owned(), serialize_outcome(program, &d.decision.outcome)?),
        ("attempts".to_owned(), Value::uint(u64::from(d.decision.attempts))),
        ("degraded".to_owned(), Value::Bool(d.decision.degraded)),
        ("stats".to_owned(), serialize_stats(&d.stats)),
        ("obs".to_owned(), serialize_delta(&d.obs)),
        (
            "elapsed_ns".to_owned(),
            Value::uint(d.elapsed.as_nanos().min(u128::from(u64::MAX)) as u64),
        ),
    ]))
}

fn parse_record(
    program: &Program,
    resolver: &MethodResolver,
    line: &str,
) -> Option<(u64, String, PersistedDecision)> {
    let _ = program;
    let v = obs::json::parse(line).ok()?;
    let fp = u64::from_str_radix(v.get("fp")?.as_str()?, 16).ok()?;
    let edge_key = v.get("edge")?.as_str()?.to_owned();
    let outcome = parse_outcome(resolver, v.get("outcome")?)?;
    let attempts = u32::try_from(v.get("attempts")?.as_u64()?).ok()?;
    let degraded = match v.get("degraded")? {
        Value::Bool(b) => *b,
        _ => return None,
    };
    let stats = parse_stats(v.get("stats")?)?;
    let obs = parse_delta(v.get("obs")?)?;
    let elapsed = Duration::from_nanos(v.get("elapsed_ns")?.as_u64()?);
    Some((
        fp,
        edge_key,
        PersistedDecision {
            decision: EdgeDecision { outcome, attempts, degraded },
            stats,
            obs,
            elapsed,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pta::ContextPolicy;

    const SRC: &str = r#"
class Box { field item: Object; }
global CACHE: Box;
fn helper(o: Object): Object {
  return o;
}
fn main() {
  var b: Box;
  var s: Object;
  b = new Box @box0;
  s = new Object @str0;
  s = call helper(s);
  b.item = s;
  $CACHE = b;
}
entry main;
"#;

    fn setup(src: &str) -> (Program, PtaResult) {
        let p = tir::parse(src).expect("parse");
        let r = pta::analyze(&p, ContextPolicy::Insensitive);
        (p, r)
    }

    fn some_edge(p: &Program, r: &PtaResult) -> HeapEdge {
        let g = p.global_by_name("CACHE").unwrap();
        let target = r.pt_global(g).iter().next().unwrap();
        HeapEdge::Global { global: g, target: LocId(target as u32) }
    }

    fn sample_decision() -> PersistedDecision {
        let stats = SearchStats { path_programs: 3, cmds_executed: 17, ..Default::default() };
        let obs = MetricsDelta::from_parts(
            [(Counter::EdgesRefuted, 1), (Counter::PathPrograms, 3)],
            vec![(Hist::EdgeMicros, 42)],
        );
        PersistedDecision {
            decision: EdgeDecision {
                outcome: SearchOutcome::Refuted,
                attempts: 1,
                degraded: false,
            },
            stats,
            obs,
            elapsed: Duration::from_micros(42),
        }
    }

    #[test]
    fn fingerprint_is_stable_and_edit_sensitive() {
        let (p, r) = setup(SRC);
        let cfg = SymexConfig::default();
        let edge = some_edge(&p, &r);
        let fpr1 = Fingerprinter::new(&p, &r, &cfg);
        let fpr2 = Fingerprinter::new(&p, &r, &cfg);
        assert_eq!(fpr1.fingerprint(&edge), fpr2.fingerprint(&edge), "not deterministic");

        // A print/parse round trip renumbers ids but preserves content.
        let p2 = tir::parse(&tir::print_program(&p)).expect("round trip");
        let r2 = pta::analyze(&p2, ContextPolicy::Insensitive);
        let edge2 = some_edge(&p2, &r2);
        let fpr3 = Fingerprinter::new(&p2, &r2, &cfg);
        assert_eq!(fpr1.fingerprint(&edge), fpr3.fingerprint(&edge2), "not id-free");
        assert_eq!(fpr1.edge_key(&edge), fpr3.edge_key(&edge2));

        // Editing a slice method changes the fingerprint.
        let edited = SRC.replace("return o;", "var t: Object;\n  t = o;\n  return t;");
        let (p3, r3) = setup(&edited);
        let edge3 = some_edge(&p3, &r3);
        let fpr4 = Fingerprinter::new(&p3, &r3, &cfg);
        assert_ne!(fpr1.fingerprint(&edge), fpr4.fingerprint(&edge3), "edit not detected");
        assert_eq!(fpr1.edge_key(&edge), fpr4.edge_key(&edge3), "edge key must survive edits");

        // A different config changes the fingerprint too.
        let fpr5 = Fingerprinter::new(&p, &r, &cfg.clone().with_budget(7));
        assert_ne!(fpr1.fingerprint(&edge), fpr5.fingerprint(&edge));
    }

    #[test]
    fn slice_contains_producers_and_callees() {
        let (p, r) = setup(SRC);
        let fpr = Fingerprinter::new(&p, &r, &SymexConfig::default());
        let edge = some_edge(&p, &r);
        let names: Vec<String> = fpr.slice(&edge).into_iter().map(|m| p.method_name(m)).collect();
        assert!(names.contains(&"main".to_owned()), "{names:?}");
        assert!(names.contains(&"helper".to_owned()), "{names:?}");
    }

    #[test]
    fn store_round_trips_records() {
        let (p, r) = setup(SRC);
        let fpr = Fingerprinter::new(&p, &r, &SymexConfig::default());
        let edge = some_edge(&p, &r);
        let fp = fpr.fingerprint(&edge);
        let key = fpr.edge_key(&edge);
        let dir = std::env::temp_dir().join(format!("thresher-persist-{fp:x}"));
        let _ = std::fs::remove_dir_all(&dir);

        let store = DecisionStore::open(&dir, CacheMode::ReadWrite, &p).unwrap();
        assert!(store.is_empty());
        store.record(&p, fp, &key, &sample_decision());
        assert_eq!(store.len(), 1);
        drop(store);

        let store = DecisionStore::open(&dir, CacheMode::Read, &p).unwrap();
        assert_eq!(store.skipped_corrupt(), 0);
        let d = store.lookup(fp).expect("record survives reopen");
        assert!(d.decision.outcome.is_refuted());
        assert_eq!(d.stats.path_programs, 3);
        assert_eq!(d.obs.counter(Counter::EdgesRefuted), 1);
        assert_eq!(d.obs.observations(), &[(Hist::EdgeMicros, 42)]);
        assert_eq!(d.elapsed, Duration::from_micros(42));
        assert!(!store.has_stale(&key, fp));
        assert!(store.has_stale(&key, fp ^ 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn witness_round_trips_by_name_and_ordinal() {
        let (p, r) = setup(SRC);
        let resolver = MethodResolver::new(&p);
        let main = p.method_ids().find(|&m| p.method_name(m) == "main").unwrap();
        let cmds = p.method_cmds(main);
        let w = Witness { trace: vec![cmds[0], cmds[2]], final_query: "q".to_owned() };
        let v = serialize_witness(&p, &w).unwrap();
        let back = parse_witness(&resolver, &v).unwrap();
        assert_eq!(back.trace, w.trace);
        assert_eq!(back.final_query, w.final_query);
        let _ = r;
    }

    #[test]
    fn corrupt_lines_are_skipped_not_fatal() {
        let (p, _r) = setup(SRC);
        let dir = std::env::temp_dir().join("thresher-persist-corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let good = serialize_record(&p, 7, "$CACHE => box0", &sample_decision()).unwrap();
        std::fs::write(
            dir.join(CACHE_FILE),
            format!(
                "{}\nnot json at all\n{}\n{{\"fp\":\"zz\"}}\n{{\"truncat",
                header_line(),
                good.to_json()
            ),
        )
        .unwrap();
        let store = DecisionStore::open(&dir, CacheMode::Read, &p).unwrap();
        assert_eq!(store.len(), 1, "the good record loads");
        assert_eq!(store.skipped_corrupt(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_discards_file() {
        let (p, _r) = setup(SRC);
        let dir = std::env::temp_dir().join("thresher-persist-version");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let good = serialize_record(&p, 7, "$CACHE => box0", &sample_decision()).unwrap();
        std::fs::write(
            dir.join(CACHE_FILE),
            format!("{{\"schema\":\"thresher.cache/999\"}}\n{}", good.to_json()),
        )
        .unwrap();
        let store = DecisionStore::open(&dir, CacheMode::Read, &p).unwrap();
        assert!(store.is_empty(), "mismatched file must be ignored wholesale");
        assert_eq!(store.skipped_corrupt(), 1);

        // Read-write mode starts the file over with a fresh header.
        let store = DecisionStore::open(&dir, CacheMode::ReadWrite, &p).unwrap();
        store.record(&p, 7, "$CACHE => box0", &sample_decision());
        drop(store);
        let store = DecisionStore::open(&dir, CacheMode::Read, &p).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.skipped_corrupt(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_mode_never_writes() {
        let (p, _r) = setup(SRC);
        let dir = std::env::temp_dir().join("thresher-persist-readonly");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(CACHE_FILE), format!("{}\n", header_line())).unwrap();
        let store = DecisionStore::open(&dir, CacheMode::Read, &p).unwrap();
        store.record(&p, 7, "$CACHE => box0", &sample_decision());
        assert!(store.is_empty());
        drop(store);
        let text = std::fs::read_to_string(dir.join(CACHE_FILE)).unwrap();
        assert_eq!(text.lines().count(), 1, "read mode must not append");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_lock_degrades_second_writer() {
        let (p, _r) = setup(SRC);
        let dir = std::env::temp_dir().join("thresher-persist-lock");
        let _ = std::fs::remove_dir_all(&dir);

        let a = DecisionStore::open(&dir, CacheMode::ReadWrite, &p).unwrap();
        assert!(!a.lock_contended());
        assert_eq!(a.mode(), CacheMode::ReadWrite);

        // Same store, second writer: must degrade to read-only, not
        // interleave appends.
        let b = DecisionStore::open(&dir, CacheMode::ReadWrite, &p).unwrap();
        assert!(b.lock_contended());
        assert_eq!(b.mode(), CacheMode::Read);
        b.record(&p, 7, "$CACHE => box0", &sample_decision());
        assert!(b.is_empty(), "degraded store must not write");

        // Read mode never contends.
        let r = DecisionStore::open(&dir, CacheMode::Read, &p).unwrap();
        assert!(!r.lock_contended());

        // Dropping the owner releases the lock for the next writer.
        drop(a);
        let c = DecisionStore::open(&dir, CacheMode::ReadWrite, &p).unwrap();
        assert!(!c.lock_contended());
        assert_eq!(c.mode(), CacheMode::ReadWrite);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_from_dead_process_is_stolen() {
        let (p, _r) = setup(SRC);
        let dir = std::env::temp_dir().join("thresher-persist-stale-lock");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // A pid far above any real pid_max: provably dead on Linux.
        std::fs::write(dir.join(LOCK_FILE), "999999999\n").unwrap();
        let store = DecisionStore::open(&dir, CacheMode::ReadWrite, &p).unwrap();
        #[cfg(target_os = "linux")]
        {
            assert!(!store.lock_contended(), "dead owner's lock must be stolen");
            assert_eq!(store.mode(), CacheMode::ReadWrite);
        }
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn size_cap_compaction_keeps_recently_hit_and_bounds_file() {
        let (p, _r) = setup(SRC);
        let dir = std::env::temp_dir().join("thresher-persist-compact");
        let _ = std::fs::remove_dir_all(&dir);
        let cap = 2048u64;
        let store = DecisionStore::open_with_limits(
            &dir,
            CacheMode::ReadWrite,
            &p,
            StoreLimits::with_max_bytes(cap),
        )
        .unwrap();
        let hot = 1_000u64;
        for i in 0..40u64 {
            store.record(&p, hot + i, &format!("$CACHE => box{i}"), &sample_decision());
            // Keep the first record hot: every compaction must spare it.
            assert!(store.lookup(hot).is_some(), "hot record evicted at step {i}");
        }
        assert!(store.file_bytes() <= cap, "file over cap: {}", store.file_bytes());
        assert!(store.len() < 40, "compaction never dropped anything");
        drop(store);

        // The rewritten file is valid and the kept records survive reopen.
        let back = DecisionStore::open(&dir, CacheMode::Read, &p).unwrap();
        assert_eq!(back.skipped_corrupt(), 0, "compacted file must be clean");
        assert!(back.lookup(hot).is_some());
        let on_disk = std::fs::metadata(dir.join(CACHE_FILE)).unwrap().len();
        assert!(on_disk <= cap);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn leftover_compaction_scratch_is_ignored_and_cleared() {
        let (p, _r) = setup(SRC);
        let dir = std::env::temp_dir().join("thresher-persist-scratch");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Simulate a kill -9 mid-compaction: a half-written scratch file.
        std::fs::write(dir.join(TMP_FILE), "{\"fp\":\"trunc").unwrap();
        let store = DecisionStore::open(&dir, CacheMode::ReadWrite, &p).unwrap();
        store.record(&p, 7, "$CACHE => box0", &sample_decision());
        assert!(!dir.join(TMP_FILE).exists(), "scratch file must be cleared at open");
        assert_eq!(store.len(), 1);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_mode_parses() {
        assert_eq!("read-write".parse::<CacheMode>(), Ok(CacheMode::ReadWrite));
        assert_eq!("read".parse::<CacheMode>(), Ok(CacheMode::Read));
        assert_eq!("off".parse::<CacheMode>(), Ok(CacheMode::Off));
        assert!("rw".parse::<CacheMode>().is_err());
    }
}
