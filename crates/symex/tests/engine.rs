//! End-to-end witness-refutation tests, including the paper's running
//! example (Figure 1) and the `from`-constraint narrowing example
//! (Figure 3).

use pta::{analyze, ContextPolicy, HeapEdge, LocId, ModRef, PtaResult};
use symex::{Engine, LoopMode, Representation, SearchOutcome, SymexConfig};
use tir::Program;

struct Setup {
    program: Program,
    pta: PtaResult,
    modref: ModRef,
}

fn setup(src: &str, policy: ContextPolicy) -> Setup {
    let program = tir::parse(src).expect("parse");
    let pta = analyze(&program, policy);
    let modref = ModRef::compute(&program, &pta);
    Setup { program, pta, modref }
}

impl Setup {
    fn engine(&self, config: SymexConfig) -> Engine<'_> {
        Engine::new(&self.program, &self.pta, &self.modref, config)
    }

    fn loc(&self, name: &str) -> LocId {
        self.pta
            .locs()
            .ids()
            .find(|&l| self.pta.loc_name(&self.program, l) == name)
            .unwrap_or_else(|| panic!("no abstract location named {name}"))
    }

    fn field_edge(&self, base: &str, class: &str, field: &str, target: &str) -> HeapEdge {
        let c = self.program.class_by_name(class).expect("class");
        let f = self.program.resolve_field(c, field).expect("field");
        HeapEdge::Field { base: self.loc(base), field: f, target: self.loc(target) }
    }

    fn array_edge(&self, base: &str, target: &str) -> HeapEdge {
        HeapEdge::Field {
            base: self.loc(base),
            field: self.program.contents_field,
            target: self.loc(target),
        }
    }

    fn global_edge(&self, global: &str, target: &str) -> HeapEdge {
        HeapEdge::Global {
            global: self.program.global_by_name(global).expect("global"),
            target: self.loc(target),
        }
    }

    fn refute(&self, edge: &HeapEdge) -> SearchOutcome {
        self.engine(SymexConfig::default()).refute_edge(edge)
    }
}

// ---------------------------------------------------------------------
// Basic witnessed / refuted cases
// ---------------------------------------------------------------------

#[test]
fn direct_global_write_is_witnessed() {
    let s = setup(
        r#"
global G: Object;
fn main() {
  var o: Object;
  o = new Object @obj0;
  $G = o;
}
entry main;
"#,
        ContextPolicy::Insensitive,
    );
    let out = s.refute(&s.global_edge("G", "obj0"));
    assert!(out.is_witnessed(), "{out:?}");
}

#[test]
fn dead_branch_write_is_refuted() {
    // The guard can never hold, so the global write cannot execute with x
    // pointing at obj0... the points-to analysis still reports the edge.
    let s = setup(
        r#"
global G: Object;
fn main() {
  var o: Object;
  var flag: int;
  o = new Object @obj0;
  flag = 0;
  if (flag == 1) {
    $G = o;
  }
}
entry main;
"#,
        ContextPolicy::Insensitive,
    );
    let out = s.refute(&s.global_edge("G", "obj0"));
    assert!(out.is_refuted(), "{out:?}");
}

#[test]
fn overwritten_global_still_witnessed_flow_insensitively() {
    // The leak property is flow-insensitive: the edge holds at SOME point,
    // even though it is overwritten later.
    let s = setup(
        r#"
global G: Object;
fn main() {
  var o: Object;
  o = new Object @obj0;
  $G = o;
  $G = null;
}
entry main;
"#,
        ContextPolicy::Insensitive,
    );
    let out = s.refute(&s.global_edge("G", "obj0"));
    assert!(out.is_witnessed(), "{out:?}");
}

#[test]
fn field_write_witnessed_through_call() {
    let s = setup(
        r#"
class Box { field item: Object; }
fn store(b: Box, o: Object) {
  b.item = o;
}
fn main() {
  var b: Box;
  var o: Object;
  b = new Box @box0;
  o = new Object @obj0;
  call store(b, o);
}
entry main;
"#,
        ContextPolicy::Insensitive,
    );
    let out = s.refute(&s.field_edge("box0", "Box", "item", "obj0"));
    assert!(out.is_witnessed(), "{out:?}");
}

#[test]
fn argument_type_mismatch_refutes_call_path() {
    // store() is called once with a String-ish object and once targeting a
    // different box; box0.item -> obj0 requires the (box0, obj0) pairing,
    // which never happens.
    let s = setup(
        r#"
class Box { field item: Object; }
fn store(b: Box, o: Object) {
  b.item = o;
}
fn main() {
  var b1: Box;
  var b2: Box;
  var o: Object;
  var str: Object;
  b1 = new Box @box0;
  b2 = new Box @box1;
  o = new Object @obj0;
  str = new Object @str0;
  call store(b1, str);
  call store(b2, o);
}
entry main;
"#,
        ContextPolicy::Insensitive,
    );
    // The flow-insensitive analysis conflates both calls and reports all
    // four edges; path-sensitive refutation kills the mismatched pairings.
    assert!(s.refute(&s.field_edge("box0", "Box", "item", "str0")).is_witnessed());
    assert!(s.refute(&s.field_edge("box1", "Box", "item", "obj0")).is_witnessed());
    assert!(s.refute(&s.field_edge("box0", "Box", "item", "obj0")).is_refuted());
    assert!(s.refute(&s.field_edge("box1", "Box", "item", "str0")).is_refuted());
}

#[test]
fn guarded_flag_leak_is_refuted() {
    // The StandupTimer pattern (§4): a latent leak behind a flag that is
    // provably never set.
    let s = setup(
        r#"
global CACHE: Object;
global ENABLED: int;
fn stash(o: Object) {
  var e: int;
  e = $ENABLED;
  if (e == 1) {
    $CACHE = o;
  }
}
fn main() {
  var o: Object;
  $ENABLED = 0;
  o = new Object @act0;
  call stash(o);
}
entry main;
"#,
        ContextPolicy::Insensitive,
    );
    let out = s.refute(&s.global_edge("CACHE", "act0"));
    assert!(out.is_refuted(), "{out:?}");
}

// ---------------------------------------------------------------------
// Figure 1: the Vec null-object example
// ---------------------------------------------------------------------

const FIG1: &str = r#"
class Activity { }
class Act extends Activity {
  method onCreate(this: Act) {
    var acts: Vec;
    var hello: Object;
    var objs: Vec;
    acts = new Vec @vec1;
    call Vec::init(acts);
    call acts.push(this);
    hello = new Object @hello0;
    objs = $OBJS;
    call objs.push(hello);
  }
}
class Vec {
  field sz: int;
  field cap: int;
  field tbl: array;
  method init(this: Vec) {
    var e: array;
    this.sz = 0;
    this.cap = -1;
    e = $EMPTY;
    this.tbl = e;
  }
  method push(this: Vec, val: Object) {
    var oldtbl: array;
    var sz: int;
    var cap: int;
    var t: int;
    var t2: int;
    var newtbl: array;
    var i: int;
    var x: Object;
    var tbl2: array;
    var sz3: int;
    oldtbl = this.tbl;
    sz = this.sz;
    cap = this.cap;
    if (sz >= cap) {
      t = len(oldtbl);
      t2 = t * 2;
      this.cap = t2;
      newtbl = newarray @arr1 [t2];
      this.tbl = newtbl;
      i = 0;
      while (i < sz) {
        x = oldtbl[i];
        newtbl[i] = x;
        i = i + 1;
      }
    }
    tbl2 = this.tbl;
    sz = this.sz;
    tbl2[sz] = val;
    sz3 = sz + 1;
    this.sz = sz3;
  }
}
global EMPTY: array;
global OBJS: Vec;
fn main() {
  var a: Act;
  var e: array;
  var v: Vec;
  e = newarray @arr0 [1];
  $EMPTY = e;
  v = new Vec @vec0;
  call Vec::init(v);
  $OBJS = v;
  a = new Act @act0;
  call a.onCreate();
}
entry main;
"#;

fn fig1() -> Setup {
    let s = setup(FIG1, ContextPolicy::Insensitive);
    // Sanity: the flow-insensitive analysis IS polluted — it believes the
    // shared EMPTY array may contain the Activity (the false alarm).
    let arr0 = s.loc("arr0");
    let act0 = s.loc("act0");
    assert!(
        s.pta.pt_field(arr0, s.program.contents_field).contains(act0.index()),
        "expected the points-to graph to conflate EMPTY contents:\n{}",
        s.pta.dump(&s.program)
    );
    s
}

#[test]
fn fig1_empty_array_edge_is_refuted() {
    // The headline refutation of §2: arr0.contents -> act0 is unrealizable.
    let s = fig1();
    let out = s.refute(&s.array_edge("arr0", "act0"));
    assert!(out.is_refuted(), "{out:?}");
}

#[test]
fn fig1_empty_array_never_holds_anything() {
    // Nothing is ever written into the shared EMPTY array.
    let s = fig1();
    let out = s.refute(&s.array_edge("arr0", "hello0"));
    assert!(out.is_refuted(), "{out:?}");
}

#[test]
fn fig1_grown_array_edges_are_witnessed() {
    // The real stores land in the grown arr1 arrays.
    let s = fig1();
    assert!(s.refute(&s.array_edge("arr1", "act0")).is_witnessed());
    assert!(s.refute(&s.array_edge("arr1", "hello0")).is_witnessed());
}

#[test]
fn fig1_refutation_needs_path_constraints() {
    // With the path-constraint set capped at zero the sz/cap contradiction
    // cannot be tracked, so the refutation must degrade to a (sound)
    // witness or timeout — never an unsound refutation of a witnessed edge.
    let s = fig1();
    let cfg = SymexConfig { max_path_atoms: 0, ..SymexConfig::default() };
    let out = s.engine(cfg).refute_edge(&s.array_edge("arr0", "act0"));
    assert!(!out.is_refuted(), "{out:?}");
}

#[test]
fn fig1_refuted_under_all_representations() {
    let s = fig1();
    for repr in
        [Representation::Mixed, Representation::FullySymbolic, Representation::FullyExplicit]
    {
        let cfg = SymexConfig::default().with_representation(repr);
        let out = s.engine(cfg).refute_edge(&s.array_edge("arr0", "act0"));
        assert!(out.is_refuted(), "{repr:?}: {out:?}");
    }
}

#[test]
fn fig1_mixed_explores_fewer_paths_than_fully_symbolic() {
    let s = fig1();
    let edge = s.array_edge("arr0", "act0");
    let mut mixed = s.engine(SymexConfig::default());
    mixed.refute_edge(&edge);
    let mut symbolic =
        s.engine(SymexConfig::default().with_representation(Representation::FullySymbolic));
    symbolic.refute_edge(&edge);
    assert!(
        mixed.stats.path_programs <= symbolic.stats.path_programs,
        "mixed {} vs fully symbolic {}",
        mixed.stats.path_programs,
        symbolic.stats.path_programs
    );
}

// ---------------------------------------------------------------------
// Loops
// ---------------------------------------------------------------------

#[test]
fn loop_with_irrelevant_body_is_transparent() {
    let s = setup(
        r#"
global G: Object;
fn main() {
  var o: Object;
  var i: int;
  o = new Object @obj0;
  i = 0;
  while (i < 10) {
    i = i + 1;
  }
  $G = o;
}
entry main;
"#,
        ContextPolicy::Insensitive,
    );
    assert!(s.refute(&s.global_edge("G", "obj0")).is_witnessed());
}

#[test]
fn loop_body_write_is_witnessed() {
    let s = setup(
        r#"
class Box { field item: Object; }
fn main() {
  var b: Box;
  var o: Object;
  var i: int;
  b = new Box @box0;
  o = new Object @obj0;
  i = 0;
  while (i < 3) {
    b.item = o;
    i = i + 1;
  }
}
entry main;
"#,
        ContextPolicy::Insensitive,
    );
    assert!(s.refute(&s.field_edge("box0", "Box", "item", "obj0")).is_witnessed());
}

#[test]
fn loop_preserved_invariant_refutes() {
    // The loop repeatedly stores into box1, never into box0; full loop
    // invariant inference keeps the boxes separate.
    let s = setup(
        r#"
class Box { field item: Object; }
fn main() {
  var b0: Box;
  var b1: Box;
  var o: Object;
  var i: int;
  b0 = new Box @box0;
  b1 = new Box @box1;
  o = new Object @obj0;
  i = 0;
  while (i < 3) {
    b1.item = o;
    i = i + 1;
  }
}
entry main;
"#,
        ContextPolicy::Insensitive,
    );
    assert!(s.refute(&s.field_edge("box0", "Box", "item", "obj0")).is_refuted());
    assert!(s.refute(&s.field_edge("box1", "Box", "item", "obj0")).is_witnessed());
}

#[test]
fn drop_all_loop_mode_stays_sound_but_weaker() {
    // Hypothesis 3 (§4): naive loop handling must never unsoundly refute;
    // witnessed edges stay witnessed.
    let s = setup(
        r#"
class Box { field item: Object; }
fn main() {
  var b: Box;
  var o: Object;
  var i: int;
  b = new Box @box0;
  o = new Object @obj0;
  i = 0;
  while (i < 3) {
    b.item = o;
    i = i + 1;
  }
}
entry main;
"#,
        ContextPolicy::Insensitive,
    );
    let cfg = SymexConfig::default().with_loop_mode(LoopMode::DropAll);
    let out = s.engine(cfg).refute_edge(&s.field_edge("box0", "Box", "item", "obj0"));
    assert!(!out.is_refuted(), "{out:?}");
}

// ---------------------------------------------------------------------
// Figure 3: narrowing through reads and writes
// ---------------------------------------------------------------------

#[test]
fn fig3_flow_narrowing_refutes_impossible_source() {
    // z = y.f where y.f can only hold b0-objects; asking whether z can be
    // the a0 object is refuted purely by from-constraint narrowing.
    let s = setup(
        r#"
class N { field f: Object; }
global OUT: Object;
fn main() {
  var y: N;
  var a: Object;
  var b: Object;
  var z: Object;
  y = new N @n0;
  a = new Object @a0;
  b = new Object @b0;
  y.f = b;
  z = y.f;
  $OUT = z;
  $OUT = a;
}
entry main;
"#,
        ContextPolicy::Insensitive,
    );
    // OUT -> a0 witnessed via the direct store; OUT -> b0 witnessed via the
    // read; and the heap edge n0.f -> a0 is not even in the graph.
    assert!(s.refute(&s.global_edge("OUT", "a0")).is_witnessed());
    assert!(s.refute(&s.global_edge("OUT", "b0")).is_witnessed());
    let c = s.program.class_by_name("N").unwrap();
    let f = s.program.resolve_field(c, "f").unwrap();
    assert!(!s.pta.pt_field(s.loc("n0"), f).contains(s.loc("a0").index()));
}

#[test]
fn write_case_split_prunes_disaliased_base() {
    // Two boxes; only box1 is written through the alias. The produced-case
    // narrowing (v_i from pt(x)) refutes box0 immediately.
    let s = setup(
        r#"
class Box { field item: Object; }
fn main() {
  var b0: Box;
  var b1: Box;
  var alias: Box;
  var o: Object;
  b0 = new Box @box0;
  b1 = new Box @box1;
  alias = b1;
  o = new Object @obj0;
  alias.item = o;
}
entry main;
"#,
        ContextPolicy::Insensitive,
    );
    assert!(s.refute(&s.field_edge("box1", "Box", "item", "obj0")).is_witnessed());
    // pt(alias) = {box1}: the box0 pairing is never reported at all.
    let c = s.program.class_by_name("Box").unwrap();
    let f = s.program.resolve_field(c, "item").unwrap();
    assert!(s.pta.pt_field(s.loc("box0"), f).is_empty());
}

// ---------------------------------------------------------------------
// Interprocedural behaviours
// ---------------------------------------------------------------------

#[test]
fn virtual_dispatch_narrows_receivers() {
    // Only the B override stores into the global; calling through an A
    // reference pointing to an A instance cannot produce the edge.
    let s = setup(
        r#"
class A {
  method go(this: A, o: Object) { return; }
}
class B extends A {
  method go(this: B, o: Object) {
    $SINK = o;
  }
}
global SINK: Object;
fn main() {
  var x: A;
  var o: Object;
  o = new Object @obj0;
  x = new A @a0;
  call x.go(o);
}
entry main;
"#,
        ContextPolicy::Insensitive,
    );
    // B::go is unreachable: the producer set is empty → vacuous refutation.
    let out = s.refute(&s.global_edge("SINK", "obj0"));
    assert!(out.is_refuted(), "{out:?}");
}

#[test]
fn deep_call_chain_within_bound_is_witnessed() {
    let s = setup(
        r#"
global G: Object;
fn f3(o: Object) { $G = o; }
fn f2(o: Object) { call f3(o); }
fn f1(o: Object) { call f2(o); }
fn main() {
  var o: Object;
  o = new Object @obj0;
  call f1(o);
}
entry main;
"#,
        ContextPolicy::Insensitive,
    );
    assert!(s.refute(&s.global_edge("G", "obj0")).is_witnessed());
}

#[test]
fn recursion_is_skipped_soundly() {
    let s = setup(
        r#"
global G: Object;
fn rec(o: Object, n: int) {
  var m: int;
  if (n > 0) {
    m = n - 1;
    call rec(o, m);
  }
  $G = o;
}
fn main() {
  var o: Object;
  o = new Object @obj0;
  call rec(o, 3);
}
entry main;
"#,
        ContextPolicy::Insensitive,
    );
    // Must terminate and must not unsoundly refute.
    let out = s.refute(&s.global_edge("G", "obj0"));
    assert!(!out.is_refuted(), "{out:?}");
}

#[test]
fn budget_exhaustion_reports_timeout() {
    let s = fig1();
    let cfg = SymexConfig::default().with_budget(3);
    let out = s.engine(cfg).refute_edge(&s.array_edge("arr0", "act0"));
    assert!(out.is_timeout(), "{out:?}");
}

#[test]
fn nondeterministic_choice_explores_both_sides() {
    let s = setup(
        r#"
global G: Object;
fn main() {
  var o: Object;
  var p: Object;
  o = new Object @obj0;
  p = new Object @obj1;
  choice {
    $G = o;
  } or {
    $G = p;
  }
}
entry main;
"#,
        ContextPolicy::Insensitive,
    );
    assert!(s.refute(&s.global_edge("G", "obj0")).is_witnessed());
    assert!(s.refute(&s.global_edge("G", "obj1")).is_witnessed());
}

#[test]
fn stats_accumulate() {
    let s = fig1();
    let mut engine = s.engine(SymexConfig::default());
    engine.refute_edge(&s.array_edge("arr0", "act0"));
    assert!(engine.stats.cmds_executed > 0);
    assert!(engine.stats.path_programs > 0);
    assert!(engine.stats.total_refutations() > 0);
}
