//! Per-rule tests for the Figure 4 transfer functions, driven through tiny
//! programs whose refutation/witness behaviour isolates one rule each.

use pta::{analyze, ContextPolicy, HeapEdge, LocId, ModRef, PtaResult};
use symex::{Engine, Representation, SearchOutcome, SymexConfig};
use tir::Program;

fn run(src: &str) -> (Program, PtaResult, ModRef) {
    let p = tir::parse(src).expect("parse");
    let r = analyze(&p, ContextPolicy::Insensitive);
    let m = ModRef::compute(&p, &r);
    (p, r, m)
}

fn loc(p: &Program, r: &PtaResult, name: &str) -> LocId {
    r.locs().ids().find(|&l| r.loc_name(p, l) == name).unwrap_or_else(|| panic!("no loc {name}"))
}

fn global_edge(p: &Program, r: &PtaResult, g: &str, t: &str) -> HeapEdge {
    HeapEdge::Global { global: p.global_by_name(g).unwrap(), target: loc(p, r, t) }
}

fn field_edge(p: &Program, r: &PtaResult, class: &str, f: &str, base: &str, t: &str) -> HeapEdge {
    let c = p.class_by_name(class).unwrap();
    let fid = p.resolve_field(c, f).unwrap();
    HeapEdge::Field { base: loc(p, r, base), field: fid, target: loc(p, r, t) }
}

fn refute(p: &Program, r: &PtaResult, m: &ModRef, edge: &HeapEdge) -> SearchOutcome {
    Engine::new(p, r, m, SymexConfig::default()).refute_edge(edge)
}

// ---------------------------------------------------------------- WitNew

#[test]
fn witnew_discharges_matching_allocation() {
    let (p, r, m) = run(r#"
global G: Object;
fn main() {
  var o: Object;
  o = new Object @site0;
  $G = o;
}
entry main;
"#);
    assert!(refute(&p, &r, &m, &global_edge(&p, &r, "G", "site0")).is_witnessed());
}

#[test]
fn witnew_refutes_field_constraint_at_birth() {
    // The cell `box.item -> obj` cannot hold before box's allocation; the
    // only store happens before the second allocation that pta conflates.
    let (p, r, m) = run(r#"
class Box { field item: Object; }
global G: Box;
fn main() {
  var b: Box;
  var o: Object;
  o = new Object @obj0;
  b = new Box @box0;
  $G = b;
  b = new Box @box1;
  b.item = o;
}
entry main;
"#);
    // Flow-insensitively, `b` conflates both boxes, so pta reports
    // box0.item -> obj0 as well. The store can only run after
    // `b = new Box @box1`, so the backwards search hits that allocation
    // with the owner constrained to {box0} — the WitNew refutation.
    let c = p.class_by_name("Box").unwrap();
    let item = p.resolve_field(c, "item").unwrap();
    assert!(r.pt_field(loc(&p, &r, "box0"), item).contains(loc(&p, &r, "obj0").index()));
    assert!(refute(&p, &r, &m, &field_edge(&p, &r, "Box", "item", "box0", "obj0")).is_refuted());
    assert!(refute(&p, &r, &m, &field_edge(&p, &r, "Box", "item", "box1", "obj0")).is_witnessed());
}

// ------------------------------------------------------------- WitAssign

#[test]
fn witassign_narrows_through_copies() {
    // z = y; y can only be a string; asking for the activity-like object
    // refutes at the assignment (eager, before any allocation is reached).
    let (p, r, m) = run(r#"
global G: Object;
fn main() {
  var y: Object;
  var z: Object;
  var a: Object;
  a = new Object @act;
  y = new Object @str;
  z = y;
  $G = z;
  $G = a;
}
entry main;
"#);
    assert!(refute(&p, &r, &m, &global_edge(&p, &r, "G", "act")).is_witnessed());
    assert!(refute(&p, &r, &m, &global_edge(&p, &r, "G", "str")).is_witnessed());
    // The graph has exactly the two edges; no cross-pollution to refute.
    let g = p.global_by_name("G").unwrap();
    assert_eq!(r.pt_global(g).len(), 2);
}

#[test]
fn witassign_null_overwrite_refutes() {
    let (p, r, m) = run(r#"
global G: Object;
fn main() {
  var o: Object;
  var flag: int;
  o = new Object @obj0;
  flag = 0;
  if (flag == 1) {
    o = null;
    $G = o;
  }
}
entry main;
"#);
    // The only store writes null on a dead path; pta still (soundly) has no
    // edge or the engine refutes it.
    let g = p.global_by_name("G").unwrap();
    if !r.pt_global(g).is_empty() {
        assert!(refute(&p, &r, &m, &global_edge(&p, &r, "G", "obj0")).is_refuted());
    }
}

// -------------------------------------------------------------- WitRead

#[test]
fn witread_materializes_base_and_narrows() {
    // G = c.item where c.item only ever holds str0: asking for act0 dies at
    // the read via pt(c.item) narrowing.
    let (p, r, m) = run(r#"
class Box { field item: Object; }
global G: Object;
fn main() {
  var c: Box;
  var v: Object;
  var a: Object;
  a = new Object @act0;
  c = new Box @box0;
  v = new Object @str0;
  c.item = v;
  v = c.item;
  $G = v;
}
entry main;
"#);
    assert!(refute(&p, &r, &m, &global_edge(&p, &r, "G", "str0")).is_witnessed());
    let g = p.global_by_name("G").unwrap();
    assert!(!r.pt_global(g).contains(loc(&p, &r, "act0").index()));
}

// -------------------------------------------------------------- WitWrite

#[test]
fn witwrite_produced_case_requires_owner_compat() {
    // Two boxes, one writer through an alias that can only be box1.
    let (p, r, m) = run(r#"
class Box { field item: Object; }
fn main() {
  var b0: Box;
  var b1: Box;
  var w: Box;
  var o: Object;
  b0 = new Box @box0;
  b1 = new Box @box1;
  choice { w = b1; } or { w = b1; }
  o = new Object @obj0;
  w.item = o;
}
entry main;
"#);
    assert!(refute(&p, &r, &m, &field_edge(&p, &r, "Box", "item", "box1", "obj0")).is_witnessed());
}

#[test]
fn witwrite_strong_update_overwrite_still_witnessed_flow_insensitively() {
    // The client property is flow-insensitive: an edge that held at some
    // point stays witnessed even if later overwritten.
    let (p, r, m) = run(r#"
class Box { field item: Object; }
global G: Box;
fn main() {
  var b: Box;
  var o: Object;
  var s: Object;
  b = new Box @box0;
  o = new Object @obj0;
  s = new Object @str0;
  b.item = o;
  b.item = s;
  $G = b;
}
entry main;
"#);
    assert!(refute(&p, &r, &m, &field_edge(&p, &r, "Box", "item", "box0", "obj0")).is_witnessed());
    assert!(refute(&p, &r, &m, &field_edge(&p, &r, "Box", "item", "box0", "str0")).is_witnessed());
}

#[test]
fn witwrite_array_index_disambiguation() {
    // arr[0] holds str, arr[1] holds act: both edges witnessed (indices are
    // data), and a third value never stored is refuted structurally by
    // having no producer.
    let (p, r, m) = run(r#"
fn main() {
  var arr: array;
  var s: Object;
  var a: Object;
  arr = newarray @arr0 [2];
  s = new Object @str0;
  a = new Object @act0;
  arr[0] = s;
  arr[1] = a;
}
entry main;
"#);
    let contents = p.contents_field;
    let e1 =
        HeapEdge::Field { base: loc(&p, &r, "arr0"), field: contents, target: loc(&p, &r, "str0") };
    let e2 =
        HeapEdge::Field { base: loc(&p, &r, "arr0"), field: contents, target: loc(&p, &r, "act0") };
    assert!(refute(&p, &r, &m, &e1).is_witnessed());
    assert!(refute(&p, &r, &m, &e2).is_witnessed());
}

// ------------------------------------------------------------- WitAssume

#[test]
fn witassume_transitive_contradiction() {
    // Guards x < y and y < x can't both hold.
    let (p, r, m) = run(r#"
global G: Object;
fn main() {
  var x: int;
  var y: int;
  var o: Object;
  o = new Object @obj0;
  if (x < y) {
    if (y < x) {
      $G = o;
    }
  }
}
entry main;
"#);
    assert!(refute(&p, &r, &m, &global_edge(&p, &r, "G", "obj0")).is_refuted());
}

#[test]
fn witassume_equality_propagates_values() {
    let (p, r, m) = run(r#"
global G: Object;
fn main() {
  var x: int;
  var o: Object;
  o = new Object @obj0;
  x = 3;
  if (x == 4) {
    $G = o;
  }
}
entry main;
"#);
    assert!(refute(&p, &r, &m, &global_edge(&p, &r, "G", "obj0")).is_refuted());
}

#[test]
fn witassume_reference_equality() {
    // o == null guard on a freshly allocated (non-null) object is dead.
    let (p, r, m) = run(r#"
global G: Object;
fn main() {
  var o: Object;
  o = new Object @obj0;
  if (o == null) {
    $G = o;
  }
}
entry main;
"#);
    assert!(refute(&p, &r, &m, &global_edge(&p, &r, "G", "obj0")).is_refuted());
}

#[test]
fn witassume_not_null_is_consistent() {
    let (p, r, m) = run(r#"
global G: Object;
fn main() {
  var o: Object;
  o = new Object @obj0;
  if (o != null) {
    $G = o;
  }
}
entry main;
"#);
    assert!(refute(&p, &r, &m, &global_edge(&p, &r, "G", "obj0")).is_witnessed());
}

// ---------------------------------------------------------- arithmetic

#[test]
fn binop_add_chain_refutes() {
    let (p, r, m) = run(r#"
global G: Object;
fn main() {
  var x: int;
  var y: int;
  var o: Object;
  o = new Object @obj0;
  x = 1;
  y = x + 1;
  if (y == 3) {
    $G = o;
  }
}
entry main;
"#);
    assert!(refute(&p, &r, &m, &global_edge(&p, &r, "G", "obj0")).is_refuted());
}

#[test]
fn binop_mul_soundly_drops() {
    // y = x * 2 with x = 1 gives y = 2, so y == 5 is dead — but Mul is
    // outside the solver fragment, so the engine must (soundly) keep the
    // path witnessable rather than wrongly refute.
    let (p, r, m) = run(r#"
global G: Object;
fn main() {
  var x: int;
  var y: int;
  var o: Object;
  o = new Object @obj0;
  x = 1;
  y = x * 2;
  if (y == 5) {
    $G = o;
  }
}
entry main;
"#);
    assert!(!refute(&p, &r, &m, &global_edge(&p, &r, "G", "obj0")).is_refuted());
}

#[test]
fn array_len_constraint_flows() {
    // len(arr) of a 1-element array is 1; the guard wants 2.
    let (p, r, m) = run(r#"
global G: Object;
fn main() {
  var arr: array;
  var n: int;
  var o: Object;
  o = new Object @obj0;
  arr = newarray @arr0 [1];
  n = len(arr);
  if (n == 2) {
    $G = o;
  }
}
entry main;
"#);
    assert!(refute(&p, &r, &m, &global_edge(&p, &r, "G", "obj0")).is_refuted());
}

// ------------------------------------------------------- calls & returns

#[test]
fn return_value_narrows() {
    let (p, r, m) = run(r#"
fn make_str(): Object {
  var s: Object;
  s = new Object @str0;
  return s;
}
global G: Object;
fn main() {
  var o: Object;
  var a: Object;
  a = new Object @act0;
  o = call make_str();
  $G = o;
  $G = a;
}
entry main;
"#);
    assert!(refute(&p, &r, &m, &global_edge(&p, &r, "G", "str0")).is_witnessed());
    assert!(refute(&p, &r, &m, &global_edge(&p, &r, "G", "act0")).is_witnessed());
}

#[test]
fn constructor_style_static_call_binds_receiver() {
    let (p, r, m) = run(r#"
class Box {
  field item: Object;
  method fill(this: Box, o: Object) {
    this.item = o;
  }
}
fn main() {
  var b0: Box;
  var b1: Box;
  var s: Object;
  var a: Object;
  b0 = new Box @box0;
  b1 = new Box @box1;
  s = new Object @str0;
  a = new Object @act0;
  call Box::fill(b0, s);
  call Box::fill(b1, a);
}
entry main;
"#);
    assert!(refute(&p, &r, &m, &field_edge(&p, &r, "Box", "item", "box0", "str0")).is_witnessed());
    assert!(refute(&p, &r, &m, &field_edge(&p, &r, "Box", "item", "box0", "act0")).is_refuted());
    assert!(refute(&p, &r, &m, &field_edge(&p, &r, "Box", "item", "box1", "str0")).is_refuted());
}

// --------------------------------------------------- representation modes

#[test]
fn explicit_mode_still_sound_and_precise_on_bindings() {
    let (p, r, m) = run(r#"
class Box { field item: Object; }
fn put(b: Box, o: Object) { b.item = o; }
fn main() {
  var b0: Box;
  var b1: Box;
  var s: Object;
  var a: Object;
  b0 = new Box @box0;
  b1 = new Box @box1;
  s = new Object @str0;
  a = new Object @act0;
  call put(b0, s);
  call put(b1, a);
}
entry main;
"#);
    for repr in
        [Representation::Mixed, Representation::FullyExplicit, Representation::FullySymbolic]
    {
        let cfg = SymexConfig::default().with_representation(repr);
        let mut e = Engine::new(&p, &r, &m, cfg);
        let out = e.refute_edge(&field_edge(&p, &r, "Box", "item", "box0", "act0"));
        assert!(out.is_refuted(), "{repr:?} failed: {out:?}");
        let mut e = Engine::new(&p, &r, &m, SymexConfig::default().with_representation(repr));
        let out = e.refute_edge(&field_edge(&p, &r, "Box", "item", "box0", "str0"));
        assert!(out.is_witnessed(), "{repr:?} failed: {out:?}");
    }
}

#[test]
fn explicit_mode_charges_more_paths() {
    let (p, r, m) = run(r#"
class Box { field item: Object; }
fn put(b: Box, o: Object) { b.item = o; }
fn main() {
  var b0: Box;
  var b1: Box;
  var s: Object;
  var a: Object;
  b0 = new Box @box0;
  b1 = new Box @box1;
  s = new Object @str0;
  a = new Object @act0;
  call put(b0, s);
  call put(b1, a);
}
entry main;
"#);
    let edge = field_edge(&p, &r, "Box", "item", "box0", "str0");
    let mut mixed = Engine::new(&p, &r, &m, SymexConfig::default());
    mixed.refute_edge(&edge);
    let mut explicit = Engine::new(
        &p,
        &r,
        &m,
        SymexConfig::default().with_representation(Representation::FullyExplicit),
    );
    explicit.refute_edge(&edge);
    assert!(
        explicit.stats.path_programs >= mixed.stats.path_programs,
        "explicit {} < mixed {}",
        explicit.stats.path_programs,
        mixed.stats.path_programs
    );
}

// ------------------------------------------------------------- witnesses

#[test]
fn witness_trace_names_real_commands() {
    let (p, r, m) = run(r#"
global G: Object;
fn main() {
  var o: Object;
  o = new Object @obj0;
  $G = o;
}
entry main;
"#);
    let out = refute(&p, &r, &m, &global_edge(&p, &r, "G", "obj0"));
    let SearchOutcome::Witnessed(w) = out else { panic!("expected witness") };
    assert!(!w.trace.is_empty());
    let described = w.describe(&p);
    assert!(described.contains("main"), "{described}");
}
