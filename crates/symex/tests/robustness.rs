//! Fault-containment and graceful-degradation tests for the refutation
//! driver: wall-clock deadlines, injected panics, budget exhaustion, and
//! the precision-degradation ladder.

use std::time::Duration;

use pta::{analyze, ContextPolicy, HeapEdge, LocId, ModRef, PtaResult};
use symex::{Engine, SearchOutcome, StopReason, SymexConfig};
use tir::Program;

/// A program whose `box0.item -> secret0` edge is refutable, but only
/// after exploring a fork-heavy loop: under `LoopMode::Infer` the search
/// needs hundreds of path programs, while the degraded `DropAll` retry
/// needs a handful. A fork budget in between makes the strict pass abort
/// and the ladder succeed.
const FORK_HEAVY: &str = r#"
class Box { field item: Object; field other: Box; }
global PUB: Box;
fn main() {
  var b: Box;
  var u: Object;
  var s: Object;
  var t: int;
  var i: int;
  b = new Box @box0;
  u = new Object @pub0;
  i = 0;
  while (i < 3) {
    choice { t = 1; } or { t = 2; }
    choice { t = 3; } or { t = 4; }
    choice { t = 5; } or { t = 6; }
    b.other = b;
    i = i + 1;
  }
  s = new Object @secret0;
  b.item = u;
  u = s;
  $PUB = b;
}
entry main;
"#;

struct Setup {
    program: Program,
    pta: PtaResult,
    modref: ModRef,
}

fn setup(src: &str) -> Setup {
    let program = tir::parse(src).expect("parse");
    let pta = analyze(&program, ContextPolicy::Insensitive);
    let modref = ModRef::compute(&program, &pta);
    Setup { program, pta, modref }
}

impl Setup {
    fn engine(&self, config: SymexConfig) -> Engine<'_> {
        Engine::new(&self.program, &self.pta, &self.modref, config)
    }

    fn loc(&self, name: &str) -> LocId {
        self.pta
            .locs()
            .ids()
            .find(|&l| self.pta.loc_name(&self.program, l) == name)
            .unwrap_or_else(|| panic!("no abstract location named {name}"))
    }

    fn item_edge(&self) -> HeapEdge {
        let c = self.program.class_by_name("Box").expect("class Box");
        let f = self.program.resolve_field(c, "item").expect("field item");
        HeapEdge::Field { base: self.loc("box0"), field: f, target: self.loc("secret0") }
    }
}

// ---------------------------------------------------------------------------
// Wall-clock deadlines
// ---------------------------------------------------------------------------

#[test]
fn zero_total_deadline_aborts_wall_clock() {
    let s = setup(FORK_HEAVY);
    let cfg = SymexConfig::default().with_total_deadline(Duration::ZERO).with_degrade(false);
    let mut engine = s.engine(cfg);
    match engine.refute_edge(&s.item_edge()) {
        SearchOutcome::Aborted(StopReason::WallClock) => {}
        other => panic!("expected Aborted(WallClock), got {other:?}"),
    }
}

#[test]
fn zero_edge_deadline_aborts_wall_clock() {
    let s = setup(FORK_HEAVY);
    let cfg = SymexConfig::default().with_edge_deadline(Duration::ZERO).with_degrade(false);
    let mut engine = s.engine(cfg);
    match engine.refute_edge(&s.item_edge()) {
        SearchOutcome::Aborted(StopReason::WallClock) => {}
        other => panic!("expected Aborted(WallClock), got {other:?}"),
    }
}

#[test]
fn generous_deadline_does_not_perturb_outcome() {
    let s = setup(FORK_HEAVY);
    let cfg = SymexConfig::default().with_edge_deadline(Duration::from_secs(600));
    let mut engine = s.engine(cfg);
    assert!(engine.refute_edge(&s.item_edge()).is_refuted());
}

// ---------------------------------------------------------------------------
// Budget exhaustion and the degradation ladder
// ---------------------------------------------------------------------------

/// Between the ~3 path programs `DropAll` needs and the ~289 `Infer` needs.
const SPLITTING_BUDGET: u64 = 64;

#[test]
fn strict_pass_exhausts_fork_budget() {
    let s = setup(FORK_HEAVY);
    let mut engine = s.engine(SymexConfig::default().with_budget(SPLITTING_BUDGET));
    match engine.refute_edge(&s.item_edge()) {
        SearchOutcome::Aborted(StopReason::ForkBudget) => {}
        other => panic!("expected Aborted(ForkBudget), got {other:?}"),
    }
}

#[test]
fn ladder_recovers_refutation_after_budget_abort() {
    let s = setup(FORK_HEAVY);
    let mut engine = s.engine(SymexConfig::default().with_budget(SPLITTING_BUDGET));
    let decision = engine.refute_edge_resilient(&s.item_edge());
    assert!(
        decision.outcome.is_refuted(),
        "ladder should refute where the strict pass aborts, got {:?}",
        decision.outcome
    );
    assert!(decision.degraded, "refutation should be attributed to a degraded retry");
    assert!(decision.attempts >= 2, "expected at least one retry, got {}", decision.attempts);
}

#[test]
fn degrade_disabled_preserves_abort() {
    let s = setup(FORK_HEAVY);
    let cfg = SymexConfig::default().with_budget(SPLITTING_BUDGET).with_degrade(false);
    let mut engine = s.engine(cfg);
    let decision = engine.refute_edge_resilient(&s.item_edge());
    match decision.outcome {
        SearchOutcome::Aborted(StopReason::ForkBudget) => {}
        other => panic!("expected Aborted(ForkBudget), got {other:?}"),
    }
    assert_eq!(decision.attempts, 1);
    assert!(!decision.degraded);
}

#[test]
fn ladder_restores_strict_config() {
    let s = setup(FORK_HEAVY);
    let cfg = SymexConfig::default().with_budget(SPLITTING_BUDGET);
    let mut engine = s.engine(cfg.clone());
    let _ = engine.refute_edge_resilient(&s.item_edge());
    // The degraded retries must not leak their coarsened settings back
    // into the engine: a second strict pass behaves like the first.
    match engine.refute_edge(&s.item_edge()) {
        SearchOutcome::Aborted(StopReason::ForkBudget) => {}
        other => panic!("config leaked from ladder: second strict pass gave {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Panic containment
// ---------------------------------------------------------------------------

#[test]
fn injected_panic_is_contained() {
    let s = setup(FORK_HEAVY);
    let mut cfg = SymexConfig::default().with_degrade(false);
    cfg.inject_panic_on_new = Some("box0".into());
    let mut engine = s.engine(cfg);
    match engine.refute_edge_contained(&s.item_edge()) {
        SearchOutcome::Aborted(StopReason::Panic(msg)) => {
            assert!(msg.contains("injected fault"), "unexpected panic message: {msg}");
        }
        other => panic!("expected Aborted(Panic), got {other:?}"),
    }
}

#[test]
fn resilient_driver_recovers_from_panic() {
    let s = setup(FORK_HEAVY);
    let cfg = SymexConfig { inject_panic_on_new: Some("box0".into()), ..SymexConfig::default() };
    let mut engine = s.engine(cfg);
    // The strict pass panics; the ladder strips the injection (it is a
    // test-only fault, not a precision setting) and refutes coarsely.
    let decision = engine.refute_edge_resilient(&s.item_edge());
    assert!(
        decision.outcome.is_refuted(),
        "ladder should recover from a contained panic, got {:?}",
        decision.outcome
    );
    assert!(decision.degraded);
}

#[test]
fn engine_stays_usable_after_contained_panic() {
    let s = setup(FORK_HEAVY);
    let mut cfg = SymexConfig::default().with_degrade(false);
    cfg.inject_panic_on_new = Some("box0".into());
    let mut engine = s.engine(cfg);
    let first = engine.refute_edge_contained(&s.item_edge());
    assert!(matches!(first, SearchOutcome::Aborted(StopReason::Panic(_))));
    // Disarm the fault and reuse the same engine: state was not poisoned.
    engine.config.inject_panic_on_new = None;
    assert!(engine.refute_edge_contained(&s.item_edge()).is_refuted());
}

// ---------------------------------------------------------------------------
// Hard heap cap
// ---------------------------------------------------------------------------

#[test]
fn hard_heap_cap_aborts_instead_of_truncating() {
    let s = setup(FORK_HEAVY);
    let cfg = SymexConfig {
        max_heap_cells: 0,
        hard_heap_cap: true,
        degrade: false,
        ..SymexConfig::default()
    };
    let mut engine = s.engine(cfg);
    match engine.refute_edge(&s.item_edge()) {
        SearchOutcome::Aborted(StopReason::HeapCap) => {}
        other => panic!("expected Aborted(HeapCap), got {other:?}"),
    }
}

#[test]
fn soft_heap_cap_still_decides() {
    let s = setup(FORK_HEAVY);
    let cfg = SymexConfig { max_heap_cells: 0, ..SymexConfig::default() };
    // hard_heap_cap defaults to false: the seed behavior (sound
    // truncation) keeps deciding the edge.
    let mut engine = s.engine(cfg);
    assert!(!matches!(engine.refute_edge(&s.item_edge()), SearchOutcome::Aborted(_)));
}

// ---------------------------------------------------------------------------
// Abort provenance surfacing
// ---------------------------------------------------------------------------

#[test]
fn abort_counts_describe_reasons() {
    let s = setup(FORK_HEAVY);
    let mut counts = symex::AbortCounts::default();
    let cfg = SymexConfig::default().with_budget(SPLITTING_BUDGET).with_degrade(false);
    let mut engine = s.engine(cfg);
    if let SearchOutcome::Aborted(reason) = engine.refute_edge(&s.item_edge()) {
        counts.record(&reason);
    }
    assert_eq!(counts.total(), 1);
    assert!(counts.describe().contains("fork-budget"));
}
