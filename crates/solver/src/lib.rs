//! # solver — decision procedure for path constraints
//!
//! Thresher discharges pure path constraints (e.g. `sz < cap` against
//! `sz = 0 ∧ cap = -1`) with an off-the-shelf SMT solver (Z3 via ScalaZ3).
//! This crate is the from-scratch substitute: a sound decision procedure for
//! conjunctions of comparisons over symbolic integers in the *integer
//! difference logic* fragment, extended with disequalities.
//!
//! The fragment is exactly what the refutation engine needs: the paper caps
//! path-constraint sets at two atoms (§4), and every constraint the engine
//! generates has the form `t1 ⋈ t2` where each `tᵢ` is a symbolic value, a
//! constant, or a symbolic value plus a constant.
//!
//! ## Soundness/completeness
//!
//! - For conjunctions without `!=` the procedure is **complete**: `is_sat`
//!   returns exactly whether an integer assignment exists (negative-cycle
//!   detection on the difference-bound graph).
//! - With `!=` atoms the procedure stays **refutation-sound** (it reports
//!   unsat only for truly unsatisfiable sets) but may report sat for systems
//!   whose unsatisfiability requires pigeonhole-style reasoning over several
//!   disequalities. This mirrors the paper's position that refutations must
//!   be sound while witnesses may be over-approximate.
//!
//! ```
//! use solver::{ConstraintSet, Term};
//! use tir::CmpOp;
//!
//! let mut cs = ConstraintSet::new();
//! let (sz, cap) = (Term::sym(0), Term::sym(1));
//! cs.add(CmpOp::Lt, sz, cap);       // sz < cap
//! cs.add(CmpOp::Eq, sz, Term::int(0));
//! assert!(cs.is_sat());
//! cs.add(CmpOp::Eq, cap, Term::int(-1));
//! assert!(!cs.is_sat());            // 0 < -1 is refuted
//! ```

#![warn(missing_docs)]

use tir::CmpOp;

/// A term of the constraint language.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Term {
    /// A symbolic integer value, identified by a caller-chosen id.
    Sym(u32),
    /// An integer constant.
    Const(i64),
    /// A symbolic value plus a constant offset (`v + k`).
    SymPlus(u32, i64),
}

impl Term {
    /// Shorthand for [`Term::Sym`].
    pub fn sym(id: u32) -> Term {
        Term::Sym(id)
    }

    /// Shorthand for [`Term::Const`].
    pub fn int(v: i64) -> Term {
        Term::Const(v)
    }

    /// Shorthand for [`Term::SymPlus`].
    pub fn sym_plus(id: u32, k: i64) -> Term {
        Term::SymPlus(id, k)
    }

    /// The symbolic id mentioned by this term, if any.
    pub fn sym_id(&self) -> Option<u32> {
        match self {
            Term::Sym(s) | Term::SymPlus(s, _) => Some(*s),
            Term::Const(_) => None,
        }
    }

    /// Rewrites the symbolic id via `f` (used when queries rename values).
    pub fn map_sym(self, f: impl FnOnce(u32) -> u32) -> Term {
        match self {
            Term::Sym(s) => Term::Sym(f(s)),
            Term::SymPlus(s, k) => Term::SymPlus(f(s), k),
            Term::Const(c) => Term::Const(c),
        }
    }
}

/// One comparison atom `lhs op rhs`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Atom {
    /// The comparison operator.
    pub op: CmpOp,
    /// Left term.
    pub lhs: Term,
    /// Right term.
    pub rhs: Term,
}

impl Atom {
    /// Creates an atom.
    pub fn new(op: CmpOp, lhs: Term, rhs: Term) -> Atom {
        Atom { op, lhs, rhs }
    }

    /// The negation of this atom.
    pub fn negate(&self) -> Atom {
        Atom { op: self.op.negate(), lhs: self.lhs, rhs: self.rhs }
    }

    /// Symbolic ids mentioned by the atom.
    pub fn syms(&self) -> impl Iterator<Item = u32> {
        self.lhs.sym_id().into_iter().chain(self.rhs.sym_id())
    }
}

/// A conjunction of [`Atom`]s with satisfiability and entailment checks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConstraintSet {
    atoms: Vec<Atom>,
}

/// Why the decision procedure could not produce an answer. Callers must
/// treat an error conservatively: assume satisfiable when checking
/// satisfiability (keeps refutations sound) and assume non-entailment when
/// checking implication.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolverError {
    /// Offset normalization overflowed `i64` (e.g. `v + k` with `k` near
    /// the representation boundary).
    Overflow,
    /// The constraint set exceeds the size the procedure is willing to
    /// decide ([`MAX_ATOMS`]).
    TooLarge,
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::Overflow => write!(f, "arithmetic overflow during normalization"),
            SolverError::TooLarge => write!(f, "constraint set exceeds solver size cap"),
        }
    }
}

impl std::error::Error for SolverError {}

/// Hard cap on the number of atoms [`ConstraintSet::try_is_sat`] will
/// decide; larger sets return [`SolverError::TooLarge`]. The engine caps
/// path constraints at a handful of atoms (§4), so this bounds only
/// adversarial inputs.
pub const MAX_ATOMS: usize = 4096;

/// Node in the difference graph: a symbolic value or the distinguished
/// zero node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Node {
    Zero,
    Sym(u32),
}

/// `(node, offset)` normalization of a term: the term's value is
/// `value(node) + offset` with `value(Zero) = 0`.
fn norm(t: Term) -> (Node, i64) {
    match t {
        Term::Sym(s) => (Node::Sym(s), 0),
        Term::Const(c) => (Node::Zero, c),
        Term::SymPlus(s, k) => (Node::Sym(s), k),
    }
}

impl ConstraintSet {
    /// Creates an empty (trivially satisfiable) set.
    pub fn new() -> Self {
        ConstraintSet::default()
    }

    /// Adds `lhs op rhs`.
    pub fn add(&mut self, op: CmpOp, lhs: Term, rhs: Term) {
        self.add_atom(Atom { op, lhs, rhs });
    }

    /// Adds an atom, deduplicating syntactic repeats.
    pub fn add_atom(&mut self, atom: Atom) {
        if !self.atoms.contains(&atom) {
            self.atoms.push(atom);
        }
    }

    /// The atoms of the conjunction.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True if the conjunction is empty.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Removes atoms not satisfying `keep`.
    pub fn retain(&mut self, keep: impl FnMut(&Atom) -> bool) {
        self.atoms.retain(keep);
    }

    /// Decides satisfiability over the integers, treating solver failure
    /// as satisfiable (the conservative direction: refutations stay sound).
    /// See the [crate docs](self) for the completeness guarantee.
    pub fn is_sat(&self) -> bool {
        self.try_is_sat().unwrap_or(true)
    }

    /// Decides satisfiability over the integers, reporting failures (offset
    /// overflow, oversized inputs) instead of panicking or silently
    /// wrapping. See the [crate docs](self) for the completeness guarantee.
    ///
    /// Every call is metered: one [`obs::Counter::SolverCalls`] bump, a
    /// verdict counter, and a latency observation — plus a fine-grained
    /// span when an installed recorder asks for one.
    pub fn try_is_sat(&self) -> Result<bool, SolverError> {
        let timer = obs::timer();
        let _span =
            obs::span_with(obs::SpanKind::SolverCall, || format!("is_sat/{}", self.atoms.len()));
        let result = self.try_is_sat_inner();
        if obs::enabled() {
            obs::add(obs::Counter::SolverCalls, 1);
            let verdict = match &result {
                Ok(true) => obs::Counter::SolverSat,
                Ok(false) => obs::Counter::SolverUnsat,
                Err(_) => obs::Counter::SolverFailures,
            };
            obs::add(verdict, 1);
            obs::observe_elapsed_ns(obs::Hist::SolverNanos, timer);
        }
        result
    }

    fn try_is_sat_inner(&self) -> Result<bool, SolverError> {
        if self.atoms.len() > MAX_ATOMS {
            return Err(SolverError::TooLarge);
        }
        // Collect difference edges `a - b <= c` and disequality pairs.
        let mut nodes: Vec<Node> = vec![Node::Zero];
        let node_of = |n: Node, nodes: &mut Vec<Node>| -> usize {
            if let Some(i) = nodes.iter().position(|&m| m == n) {
                i
            } else {
                nodes.push(n);
                nodes.len() - 1
            }
        };
        let mut edges: Vec<(usize, usize, i64)> = Vec::new(); // a - b <= c as edge b -> a with weight c
        let mut diseqs: Vec<((Node, i64), (Node, i64))> = Vec::new();

        for atom in &self.atoms {
            let (a, ca) = norm(atom.lhs);
            let (b, cb) = norm(atom.rhs);
            if a == b {
                // Both sides over the same node: decide directly.
                // lhs - rhs = ca - cb.
                if !atom.op.eval(ca, cb) {
                    return Ok(false);
                }
                continue;
            }
            let ai = node_of(a, &mut nodes);
            let bi = node_of(b, &mut nodes);
            // value(a) + ca  op  value(b) + cb
            // i.e. a - b  op  cb - ca
            let d = cb.checked_sub(ca).ok_or(SolverError::Overflow)?;
            let neg_d = d.checked_neg().ok_or(SolverError::Overflow)?;
            match atom.op {
                CmpOp::Lt => edges.push((bi, ai, d.checked_sub(1).ok_or(SolverError::Overflow)?)),
                CmpOp::Le => edges.push((bi, ai, d)),
                CmpOp::Gt => {
                    edges.push((ai, bi, neg_d.checked_sub(1).ok_or(SolverError::Overflow)?))
                }
                CmpOp::Ge => edges.push((ai, bi, neg_d)),
                CmpOp::Eq => {
                    edges.push((bi, ai, d));
                    edges.push((ai, bi, neg_d));
                }
                CmpOp::Ne => diseqs.push(((a, ca), (b, cb))),
            }
        }

        // Bellman-Ford negative cycle detection.
        let n = nodes.len();
        let mut dist = vec![0i64; n];
        for round in 0..n {
            let mut changed = false;
            for &(from, to, w) in &edges {
                let cand = dist[from].saturating_add(w);
                if cand < dist[to] {
                    dist[to] = cand;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            if round + 1 == n && changed {
                return Ok(false); // negative cycle: the difference system is unsat
            }
        }

        if diseqs.is_empty() {
            return Ok(true);
        }

        // All-pairs shortest paths (Floyd-Warshall) to detect forced
        // equalities contradicting a disequality.
        const INF: i64 = i64::MAX / 4;
        let mut d = vec![vec![INF; n]; n];
        for (i, row) in d.iter_mut().enumerate() {
            row[i] = 0;
        }
        for &(from, to, w) in &edges {
            // edge b -> a with weight c encodes a - b <= c; shortest path
            // d[b][a] bounds a - b.
            if w < d[from][to] {
                d[from][to] = w;
            }
        }
        for k in 0..n {
            for i in 0..n {
                if d[i][k] == INF {
                    continue;
                }
                for j in 0..n {
                    let cand = d[i][k].saturating_add(d[k][j]);
                    if cand < d[i][j] {
                        d[i][j] = cand;
                    }
                }
            }
        }
        for ((a, ca), (b, cb)) in diseqs {
            let ai = nodes.iter().position(|&m| m == a).expect("node interned");
            let bi = nodes.iter().position(|&m| m == b).expect("node interned");
            // lhs = rhs forced iff a - b forced to equal cb - ca:
            //   d[bi][ai] <= cb - ca  (a - b <= cb - ca)
            //   d[ai][bi] <= ca - cb  (b - a <= ca - cb)
            let delta = cb.checked_sub(ca).ok_or(SolverError::Overflow)?;
            let neg_delta = delta.checked_neg().ok_or(SolverError::Overflow)?;
            if d[bi][ai] <= delta && d[ai][bi] <= neg_delta {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// True if this conjunction entails `atom` (refutation-sound: may
    /// return false negatives, never false positives). Solver failure is
    /// treated as non-entailment.
    pub fn implies(&self, atom: &Atom) -> bool {
        self.try_implies(atom).unwrap_or(false)
    }

    /// Entailment check reporting solver failures instead of panicking.
    pub fn try_implies(&self, atom: &Atom) -> Result<bool, SolverError> {
        if self.atoms.contains(atom) {
            return Ok(true);
        }
        let mut with_neg = self.clone();
        match atom.op {
            // The negation of Eq is Ne, whose unsat check is incomplete, so
            // entailment of Eq goes through both inequalities instead.
            CmpOp::Eq => {
                let le = Atom::new(CmpOp::Le, atom.lhs, atom.rhs);
                let ge = Atom::new(CmpOp::Ge, atom.lhs, atom.rhs);
                return Ok(self.try_implies(&le)? && self.try_implies(&ge)?);
            }
            _ => with_neg.add_atom(atom.negate()),
        }
        Ok(!with_neg.try_is_sat()?)
    }

    /// True if every atom of `other` is entailed by `self`.
    pub fn entails_all(&self, other: &ConstraintSet) -> bool {
        other.atoms.iter().all(|a| self.implies(a))
    }
}

impl FromIterator<Atom> for ConstraintSet {
    fn from_iter<I: IntoIterator<Item = Atom>>(iter: I) -> Self {
        let mut cs = ConstraintSet::new();
        for a in iter {
            cs.add_atom(a);
        }
        cs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> Term {
        Term::sym(i)
    }

    fn c(v: i64) -> Term {
        Term::int(v)
    }

    #[test]
    fn empty_is_sat() {
        assert!(ConstraintSet::new().is_sat());
    }

    #[test]
    fn paper_vec_contradiction() {
        // The Figure 1 refutation: sz < cap with sz = 0 and cap = -1.
        let mut cs = ConstraintSet::new();
        cs.add(CmpOp::Lt, s(0), s(1));
        cs.add(CmpOp::Eq, s(0), c(0));
        cs.add(CmpOp::Eq, s(1), c(-1));
        assert!(!cs.is_sat());
    }

    #[test]
    fn strict_integer_semantics() {
        // x < y && y < x + 2 forces y = x + 1: satisfiable.
        let mut cs = ConstraintSet::new();
        cs.add(CmpOp::Lt, s(0), s(1));
        cs.add(CmpOp::Lt, s(1), Term::sym_plus(0, 2));
        assert!(cs.is_sat());
        // x < y && y < x + 1 is unsat over the integers.
        let mut cs = ConstraintSet::new();
        cs.add(CmpOp::Lt, s(0), s(1));
        cs.add(CmpOp::Lt, s(1), Term::sym_plus(0, 1));
        assert!(!cs.is_sat());
    }

    #[test]
    fn constant_comparisons_evaluate() {
        let mut cs = ConstraintSet::new();
        cs.add(CmpOp::Lt, c(3), c(5));
        assert!(cs.is_sat());
        cs.add(CmpOp::Ge, c(3), c(5));
        assert!(!cs.is_sat());
    }

    #[test]
    fn disequality_with_forced_equality_unsat() {
        let mut cs = ConstraintSet::new();
        cs.add(CmpOp::Le, s(0), s(1));
        cs.add(CmpOp::Ge, s(0), s(1));
        cs.add(CmpOp::Ne, s(0), s(1));
        assert!(!cs.is_sat());
    }

    #[test]
    fn disequality_against_constant() {
        let mut cs = ConstraintSet::new();
        cs.add(CmpOp::Eq, s(0), c(4));
        cs.add(CmpOp::Ne, s(0), c(4));
        assert!(!cs.is_sat());

        let mut cs = ConstraintSet::new();
        cs.add(CmpOp::Le, s(0), c(4));
        cs.add(CmpOp::Ne, s(0), c(4));
        assert!(cs.is_sat());
    }

    #[test]
    fn offsets_chain_through_equalities() {
        // v = w + 1, w = 5, v = 7 is unsat.
        let mut cs = ConstraintSet::new();
        cs.add(CmpOp::Eq, s(0), Term::sym_plus(1, 1));
        cs.add(CmpOp::Eq, s(1), c(5));
        cs.add(CmpOp::Eq, s(0), c(7));
        assert!(!cs.is_sat());
    }

    #[test]
    fn implies_basic() {
        let mut cs = ConstraintSet::new();
        cs.add(CmpOp::Lt, s(0), c(5));
        assert!(cs.implies(&Atom::new(CmpOp::Le, s(0), c(10))));
        assert!(cs.implies(&Atom::new(CmpOp::Lt, s(0), c(5))));
        assert!(!cs.implies(&Atom::new(CmpOp::Lt, s(0), c(3))));
    }

    #[test]
    fn implies_equality_via_two_bounds() {
        let mut cs = ConstraintSet::new();
        cs.add(CmpOp::Le, s(0), c(4));
        cs.add(CmpOp::Ge, s(0), c(4));
        assert!(cs.implies(&Atom::new(CmpOp::Eq, s(0), c(4))));
    }

    #[test]
    fn entails_all_subset() {
        let mut big = ConstraintSet::new();
        big.add(CmpOp::Eq, s(0), c(1));
        big.add(CmpOp::Lt, s(1), s(2));
        let mut small = ConstraintSet::new();
        small.add(CmpOp::Le, s(1), s(2));
        assert!(big.entails_all(&small));
        assert!(!small.entails_all(&big));
    }

    #[test]
    fn dedup_on_add() {
        let mut cs = ConstraintSet::new();
        cs.add(CmpOp::Lt, s(0), s(1));
        cs.add(CmpOp::Lt, s(0), s(1));
        assert_eq!(cs.len(), 1);
    }

    #[test]
    fn transitive_chain_detects_cycle() {
        let mut cs = ConstraintSet::new();
        cs.add(CmpOp::Lt, s(0), s(1));
        cs.add(CmpOp::Lt, s(1), s(2));
        cs.add(CmpOp::Lt, s(2), s(0));
        assert!(!cs.is_sat());
    }

    #[test]
    fn overflow_reports_error_not_panic() {
        // cb - ca overflows i64 during normalization.
        let mut cs = ConstraintSet::new();
        cs.add(CmpOp::Lt, Term::sym_plus(0, i64::MIN), Term::sym_plus(1, i64::MAX));
        assert_eq!(cs.try_is_sat(), Err(SolverError::Overflow));
        // Conservative public answers: sat (not a refutation), no entailment.
        assert!(cs.is_sat());
        assert!(!cs.implies(&Atom::new(CmpOp::Lt, s(0), s(1))));
    }

    #[test]
    fn extreme_but_valid_offsets_still_decide() {
        let mut cs = ConstraintSet::new();
        cs.add(CmpOp::Eq, s(0), Term::sym_plus(1, i64::MAX - 1));
        assert_eq!(cs.try_is_sat(), Ok(true));
    }

    #[test]
    fn oversized_set_reports_too_large() {
        let mut cs = ConstraintSet::new();
        for i in 0..(MAX_ATOMS as i64 + 1) {
            cs.add(CmpOp::Le, s(0), c(i));
        }
        assert_eq!(cs.try_is_sat(), Err(SolverError::TooLarge));
        assert!(cs.is_sat());
    }

    #[test]
    fn map_sym_renames() {
        let t = Term::sym_plus(3, 2).map_sym(|s| s + 10);
        assert_eq!(t, Term::SymPlus(13, 2));
        assert_eq!(Term::Const(5).map_sym(|_| unreachable!()), Term::Const(5));
    }
}
