//! Differential property tests: the decision procedure against brute-force
//! enumeration over a small integer domain.

use proptest::prelude::*;
use solver::{Atom, ConstraintSet, Term};
use tir::CmpOp;

const NSYMS: u32 = 4;
const DOMAIN: std::ops::RangeInclusive<i64> = -3..=3;

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0..NSYMS).prop_map(Term::sym),
        (-3i64..=3).prop_map(Term::int),
        ((0..NSYMS), -2i64..=2).prop_map(|(s, k)| Term::sym_plus(s, k)),
    ]
}

fn arb_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    (arb_op(), arb_term(), arb_term()).prop_map(|(op, l, r)| Atom::new(op, l, r))
}

fn eval_term(t: Term, env: &[i64]) -> i64 {
    match t {
        Term::Sym(s) => env[s as usize],
        Term::Const(c) => c,
        Term::SymPlus(s, k) => env[s as usize] + k,
    }
}

/// Brute-force satisfiability over the bounded domain. A `true` result is a
/// genuine model; `false` only means no model exists *within the domain*, so
/// it is compared asymmetrically for atoms with large offsets.
fn brute_sat(cs: &ConstraintSet) -> bool {
    brute_sat_in(cs, DOMAIN)
}

fn brute_sat_in(cs: &ConstraintSet, domain: std::ops::RangeInclusive<i64>) -> bool {
    let vals: Vec<i64> = domain.collect();
    let n = NSYMS as usize;
    let mut idx = vec![0usize; n];
    loop {
        let env: Vec<i64> = idx.iter().map(|&i| vals[i]).collect();
        if cs
            .atoms()
            .iter()
            .all(|a| a.op.eval(eval_term(a.lhs, &env), eval_term(a.rhs, &env)))
        {
            return true;
        }
        // increment mixed-radix counter
        let mut i = 0;
        loop {
            if i == n {
                return false;
            }
            idx[i] += 1;
            if idx[i] < vals.len() {
                break;
            }
            idx[i] = 0;
            i += 1;
        }
    }
}

proptest! {
    /// Refutation soundness: if the solver says unsat, brute force must find
    /// no model (in any domain — a brute-force model disproves unsat).
    #[test]
    fn unsat_is_sound(atoms in proptest::collection::vec(arb_atom(), 0..6)) {
        let cs: ConstraintSet = atoms.into_iter().collect();
        if !cs.is_sat() {
            prop_assert!(!brute_sat(&cs), "solver reported unsat but a model exists: {cs:?}");
        }
    }

    /// Completeness on the pure difference fragment (no `!=`): solver and
    /// brute force agree whenever brute force finds a model, and whenever the
    /// solver reports sat the constraint graph genuinely has no negative
    /// cycle — cross-checked by brute force over a widened domain being
    /// consistent for small offsets.
    #[test]
    fn sat_complete_without_ne(
        atoms in proptest::collection::vec(
            (prop_oneof![Just(CmpOp::Eq), Just(CmpOp::Lt), Just(CmpOp::Le), Just(CmpOp::Gt), Just(CmpOp::Ge)],
             (0..NSYMS).prop_map(Term::sym),
             prop_oneof![(0..NSYMS).prop_map(Term::sym), (-2i64..=2).prop_map(Term::int)])
                .prop_map(|(op, l, r)| Atom::new(op, l, r)),
            0..5,
        )
    ) {
        let cs: ConstraintSet = atoms.into_iter().collect();
        // With at most 4 syms, constants in [-2, 2], and unit-strict
        // inequalities, any satisfiable system has a model within [-8, 8]
        // (shortest-path distances are bounded by 4 unit edges + offset 2,
        // anchored at a constant of magnitude <= 2).
        prop_assert_eq!(cs.is_sat(), brute_sat_in(&cs, -8..=8), "mismatch on {:?}", cs);
    }

    /// implies() must agree with semantic entailment when it answers true.
    #[test]
    fn implies_is_sound(
        atoms in proptest::collection::vec(arb_atom(), 0..4),
        goal in arb_atom(),
    ) {
        let cs: ConstraintSet = atoms.into_iter().collect();
        if cs.implies(&goal) {
            // Every model of cs within the domain must satisfy goal.
            let vals: Vec<i64> = DOMAIN.collect();
            let n = NSYMS as usize;
            let mut idx = vec![0usize; n];
            loop {
                let env: Vec<i64> = idx.iter().map(|&i| vals[i]).collect();
                let holds_cs = cs
                    .atoms()
                    .iter()
                    .all(|a| a.op.eval(eval_term(a.lhs, &env), eval_term(a.rhs, &env)));
                if holds_cs {
                    prop_assert!(
                        goal.op.eval(eval_term(goal.lhs, &env), eval_term(goal.rhs, &env)),
                        "cs {cs:?} claims to imply {goal:?} but {env:?} is a countermodel"
                    );
                }
                let mut i = 0;
                loop {
                    if i == n {
                        return Ok(());
                    }
                    idx[i] += 1;
                    if idx[i] < vals.len() {
                        break;
                    }
                    idx[i] = 0;
                    i += 1;
                }
            }
        }
    }
}
