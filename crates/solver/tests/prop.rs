//! Differential property tests: the decision procedure against brute-force
//! enumeration over a small integer domain.

use minicheck::{run_cases, Rng};
use solver::{Atom, ConstraintSet, Term};
use tir::CmpOp;

const NSYMS: u32 = 4;
const DOMAIN: std::ops::RangeInclusive<i64> = -3..=3;

fn arb_term(rng: &mut Rng) -> Term {
    match rng.below(3) {
        0 => Term::sym(rng.usize_in(0, NSYMS as usize - 1) as u32),
        1 => Term::int(rng.i64_in(-3, 3)),
        _ => Term::sym_plus(rng.usize_in(0, NSYMS as usize - 1) as u32, rng.i64_in(-2, 2)),
    }
}

const OPS: [CmpOp; 6] = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];

fn arb_op(rng: &mut Rng) -> CmpOp {
    OPS[rng.below(OPS.len())]
}

fn arb_atom(rng: &mut Rng) -> Atom {
    Atom::new(arb_op(rng), arb_term(rng), arb_term(rng))
}

fn arb_atoms(rng: &mut Rng, max_len: usize) -> Vec<Atom> {
    let n = rng.below(max_len);
    (0..n).map(|_| arb_atom(rng)).collect()
}

fn eval_term(t: Term, env: &[i64]) -> i64 {
    match t {
        Term::Sym(s) => env[s as usize],
        Term::Const(c) => c,
        Term::SymPlus(s, k) => env[s as usize] + k,
    }
}

/// Brute-force satisfiability over the bounded domain. A `true` result is a
/// genuine model; `false` only means no model exists *within the domain*, so
/// it is compared asymmetrically for atoms with large offsets.
fn brute_sat(cs: &ConstraintSet) -> bool {
    brute_sat_in(cs, DOMAIN)
}

fn brute_sat_in(cs: &ConstraintSet, domain: std::ops::RangeInclusive<i64>) -> bool {
    let vals: Vec<i64> = domain.collect();
    let n = NSYMS as usize;
    let mut idx = vec![0usize; n];
    loop {
        let env: Vec<i64> = idx.iter().map(|&i| vals[i]).collect();
        if cs.atoms().iter().all(|a| a.op.eval(eval_term(a.lhs, &env), eval_term(a.rhs, &env))) {
            return true;
        }
        // increment mixed-radix counter
        let mut i = 0;
        loop {
            if i == n {
                return false;
            }
            idx[i] += 1;
            if idx[i] < vals.len() {
                break;
            }
            idx[i] = 0;
            i += 1;
        }
    }
}

/// Refutation soundness: if the solver says unsat, brute force must find
/// no model (in any domain — a brute-force model disproves unsat).
#[test]
fn unsat_is_sound() {
    run_cases(256, |rng| {
        let cs: ConstraintSet = arb_atoms(rng, 6).into_iter().collect();
        if !cs.is_sat() {
            assert!(!brute_sat(&cs), "solver reported unsat but a model exists: {cs:?}");
        }
    });
}

/// Completeness on the pure difference fragment (no `!=`): solver and
/// brute force agree whenever brute force finds a model, and whenever the
/// solver reports sat the constraint graph genuinely has no negative
/// cycle — cross-checked by brute force over a widened domain being
/// consistent for small offsets.
#[test]
fn sat_complete_without_ne() {
    const NO_NE: [CmpOp; 5] = [CmpOp::Eq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
    run_cases(256, |rng| {
        let n = rng.below(5);
        let atoms: Vec<Atom> = (0..n)
            .map(|_| {
                let op = NO_NE[rng.below(NO_NE.len())];
                let lhs = Term::sym(rng.usize_in(0, NSYMS as usize - 1) as u32);
                let rhs = if rng.bool() {
                    Term::sym(rng.usize_in(0, NSYMS as usize - 1) as u32)
                } else {
                    Term::int(rng.i64_in(-2, 2))
                };
                Atom::new(op, lhs, rhs)
            })
            .collect();
        let cs: ConstraintSet = atoms.into_iter().collect();
        // With at most 4 syms, constants in [-2, 2], and unit-strict
        // inequalities, any satisfiable system has a model within [-8, 8]
        // (shortest-path distances are bounded by 4 unit edges + offset 2,
        // anchored at a constant of magnitude <= 2).
        assert_eq!(cs.is_sat(), brute_sat_in(&cs, -8..=8), "mismatch on {cs:?}");
    });
}

/// implies() must agree with semantic entailment when it answers true.
#[test]
fn implies_is_sound() {
    run_cases(256, |rng| {
        let cs: ConstraintSet = arb_atoms(rng, 4).into_iter().collect();
        let goal = arb_atom(rng);
        if cs.implies(&goal) {
            // Every model of cs within the domain must satisfy goal.
            let vals: Vec<i64> = DOMAIN.collect();
            let n = NSYMS as usize;
            let mut idx = vec![0usize; n];
            loop {
                let env: Vec<i64> = idx.iter().map(|&i| vals[i]).collect();
                let holds_cs = cs
                    .atoms()
                    .iter()
                    .all(|a| a.op.eval(eval_term(a.lhs, &env), eval_term(a.rhs, &env)));
                if holds_cs {
                    assert!(
                        goal.op.eval(eval_term(goal.lhs, &env), eval_term(goal.rhs, &env)),
                        "cs {cs:?} claims to imply {goal:?} but {env:?} is a countermodel"
                    );
                }
                let mut i = 0;
                loop {
                    if i == n {
                        return;
                    }
                    idx[i] += 1;
                    if idx[i] < vals.len() {
                        break;
                    }
                    idx[i] = 0;
                    i += 1;
                }
            }
        }
    });
}
