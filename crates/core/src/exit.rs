//! The process exit-code contract shared by `thresher-cli` and
//! `thresher-serve`.
//!
//! Shell callers need to distinguish three things a refutation run can
//! tell them — *nothing reachable*, *something reachable*, and *the
//! answer is incomplete* — from the ways a run can fail before producing
//! an answer at all. The contract follows BSD `sysexits.h` for the
//! failure band (64+) and keeps the small codes for analysis outcomes:
//!
//! | code | name | meaning |
//! |---|---|---|
//! | 0 | [`OK`] | completed; every query refuted / no surviving alarms |
//! | 1 | [`FINDINGS`] | completed; something reachable / a leak survived |
//! | 2 | [`DEGRADED`] | completed with no findings, but some searches aborted (deadline/budget) — "refuted" may be incomplete |
//! | 64 | [`USAGE`] | command-line usage error (bad flag, unknown query name) |
//! | 65 | [`DATAERR`] | program parse error |
//! | 66 | [`NOINPUT`] | input file missing or unreadable |
//! | 70 | [`SOFTWARE`] | contained internal error |
//! | 74 | [`IOERR`] | cannot write outputs or open the cache |
//! | 75 | [`TEMPFAIL`] | transient overload (`thresher-serve`: shed/draining) |
//!
//! Findings dominate degradation (a witnessed leak is a definite answer
//! regardless of aborts elsewhere), and any pre-answer failure dominates
//! both. `--diff-reports` keeps its own tiny contract: 0 equivalent,
//! 1 different, plus the 64+ failure band.

/// Completed; nothing reachable, no surviving alarms.
pub const OK: u8 = 0;
/// Completed; at least one query reachable or one alarm survived.
pub const FINDINGS: u8 = 1;
/// Completed without findings, but at least one edge search aborted —
/// the refutation may be incomplete.
pub const DEGRADED: u8 = 2;
/// Command-line usage error (`EX_USAGE`).
pub const USAGE: u8 = 64;
/// Input program failed to parse (`EX_DATAERR`).
pub const DATAERR: u8 = 65;
/// Input file missing or unreadable (`EX_NOINPUT`).
pub const NOINPUT: u8 = 66;
/// Contained internal error (`EX_SOFTWARE`).
pub const SOFTWARE: u8 = 70;
/// Output or cache I/O failure (`EX_IOERR`).
pub const IOERR: u8 = 74;
/// Transient overload; retry later (`EX_TEMPFAIL`).
pub const TEMPFAIL: u8 = 75;

/// Accumulates analysis outcomes into the final exit code.
#[derive(Clone, Copy, Debug, Default)]
pub struct Outcome {
    findings: bool,
    degraded: bool,
}

impl Outcome {
    /// A fresh outcome (exit code [`OK`]).
    pub fn new() -> Self {
        Outcome::default()
    }

    /// Records whether a query/client run surfaced a finding (a reachable
    /// path or a surviving alarm).
    pub fn record_findings(&mut self, any: bool) {
        self.findings |= any;
    }

    /// Records whether any edge search in a run aborted (deadline,
    /// budget, contained panic, ...).
    pub fn record_aborts(&mut self, any: bool) {
        self.degraded |= any;
    }

    /// The exit code under the contract: findings dominate degradation.
    pub fn code(&self) -> u8 {
        if self.findings {
            FINDINGS
        } else if self.degraded {
            DEGRADED
        } else {
            OK
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_findings_over_degraded() {
        let mut o = Outcome::new();
        assert_eq!(o.code(), OK);
        o.record_aborts(true);
        assert_eq!(o.code(), DEGRADED);
        o.record_findings(true);
        assert_eq!(o.code(), FINDINGS);
        // Sticky: later clean runs don't clear earlier findings.
        o.record_findings(false);
        o.record_aborts(false);
        assert_eq!(o.code(), FINDINGS);
    }

    #[test]
    fn failure_band_is_sysexits() {
        assert_eq!(USAGE, 64);
        assert_eq!(DATAERR, 65);
        assert_eq!(NOINPUT, 66);
        assert_eq!(SOFTWARE, 70);
        assert_eq!(IOERR, 74);
        assert_eq!(TEMPFAIL, 75);
    }
}
