//! # thresher — precise refutations for heap reachability
//!
//! A from-scratch Rust reproduction of *Thresher: Precise Refutations for
//! Heap Reachability* (Blackshear, Chang, Sridharan — PLDI 2013).
//!
//! Thresher answers heap-reachability queries — "can this object be reached
//! from that variable or object via pointer dereferences?" — with flow-,
//! context-, and path-sensitivity, by *refining* the result of a cheap
//! flow-insensitive points-to analysis: every may edge involved in a client
//! alarm is subjected to a backwards, goal-directed witness search, and a
//! failed search soundly deletes the edge.
//!
//! ## Pipeline
//!
//! 1. [`tir`] — the analyzed language (a small Java-like IR);
//! 2. [`pta`] — Andersen-style points-to analysis, call graph, mod/ref;
//! 3. [`symex`] — the witness-refutation engine with mixed
//!    symbolic-explicit queries (the paper's core contribution);
//! 4. [`android`] — the Activity-leak client and Android library model;
//! 5. [`Thresher`] (this crate) — one façade over the pipeline.
//!
//! ## Quick start
//!
//! ```
//! use thresher::Thresher;
//!
//! let program = tir::parse(r#"
//! class Box { field item: Object; }
//! global CACHE: Box;
//! fn main() {
//!   var b: Box;
//!   var secret: Object;
//!   var s: Object;
//!   b = new Box @box0;
//!   secret = new Object @secret0;
//!   s = new Object @str0;
//!   b.item = s;
//!   $CACHE = b;
//! }
//! entry main;
//! "#)?;
//!
//! let thresher = Thresher::new(&program);
//! // str0 really is stored in the cached box...
//! assert!(thresher.query_reachable("CACHE", "str0").is_reachable());
//! // ...and secret0 never is (not even an edge in the graph).
//! assert!(!thresher.query_reachable("CACHE", "secret0").is_reachable());
//! # Ok::<(), tir::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod clients;
pub mod exit;
pub mod null;
pub mod serve;

use std::path::Path;
use std::sync::{Arc, Mutex};

use pta::{
    BitSet, ContextPolicy, DemandPta, HeapEdge, HeapGraphView, LocId, ModRef, PtaResult, PtaView,
};
use symex::Engine;
use tir::Program;

pub use android::{
    paper_annotations, ActivityLeakChecker, Alarm, AlarmResult, Annotation, ClientStats, LeakReport,
};
pub use clients::{Escape, EscapeChecker, EscapeReport};
pub use null::{NullClient, NullDeref, NullReport};
pub use obs;
pub use pta::ContextPolicy as PointsToPolicy;
pub use pta::{DemandQueryStats, DemandStats, PartialPtaResult, PtaOptions, SolverKind};
pub use symex::{
    default_jobs, AbortCounts, CacheMode, DecisionStore, DerefSite, EdgeAnswer, EdgeDecision,
    JobVerdict, LoopMode, ReachJob, RefKey, RefutationScheduler, Representation, SchedulerOutcome,
    SearchOutcome, SearchStats, StopReason, StoreLimits, SymexConfig, Tally, Witness,
};

/// The outcome of a refined heap-reachability query.
#[derive(Debug)]
pub enum ReachabilityAnswer {
    /// Reachability was refuted: every candidate heap path was severed by
    /// sound refutations.
    Refuted {
        /// Edges individually refuted during the search.
        refuted_edges: Vec<HeapEdge>,
    },
    /// A heap path survived; each of its edges is witnessed (or timed out,
    /// which is conservatively treated as witnessed).
    Reachable {
        /// The surviving path.
        path: Vec<HeapEdge>,
        /// A witness for one of the path's edges, if available.
        witness: Option<Witness>,
    },
}

impl ReachabilityAnswer {
    /// True if a path survived refutation.
    pub fn is_reachable(&self) -> bool {
        matches!(self, ReachabilityAnswer::Reachable { .. })
    }
}

/// One-stop façade: owns the analysis results for a program and answers
/// refined reachability queries.
pub struct Thresher<'p> {
    program: &'p Program,
    config: SymexConfig,
    pta: Arc<PtaResult>,
    /// The demand-driven query tier, present iff the façade was built with
    /// [`SolverKind::Demand`]. Queries then run against a per-query slice
    /// ([`PartialPtaResult`]) instead of the exhaustive result.
    demand: Option<Mutex<DemandPta>>,
    modref: ModRef,
    jobs: usize,
    cache: Option<Arc<DecisionStore>>,
}

impl<'p> Thresher<'p> {
    /// Analyzes `program` with the default configuration
    /// (context-insensitive points-to analysis, paper-default engine).
    pub fn new(program: &'p Program) -> Self {
        Self::with_setup(program, ContextPolicy::Insensitive, SymexConfig::default())
    }

    /// Analyzes `program` with an explicit points-to policy and engine
    /// configuration.
    pub fn with_setup(program: &'p Program, policy: ContextPolicy, config: SymexConfig) -> Self {
        Self::with_options(program, policy, config, &PtaOptions::default())
    }

    /// Full-control constructor, including points-to annotations.
    pub fn with_options(
        program: &'p Program,
        policy: ContextPolicy,
        config: SymexConfig,
        options: &PtaOptions,
    ) -> Self {
        let _span = obs::span(obs::SpanKind::Setup, "points-to + mod/ref");
        let (pta, demand) = if options.solver == SolverKind::Demand {
            let d = DemandPta::analyze(program, policy, options);
            (Arc::clone(d.oracle()), Some(Mutex::new(d)))
        } else {
            (Arc::new(pta::analyze_with(program, policy, options)), None)
        };
        let modref = ModRef::compute(program, &pta);
        Thresher { program, config, pta, demand, modref, jobs: 1, cache: None }
    }

    /// Sets the refutation-scheduler thread count used by the query and
    /// client entry points (1 = sequential, the default; every reported
    /// number is identical for every setting). See [`default_jobs`] for the
    /// all-cores value.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Attaches a persistent, content-addressed refutation cache rooted at
    /// `dir` (see `symex::persist`). Decisions whose fingerprint — edge,
    /// producer statements, engine configuration, and the canonical text of
    /// every method in the edge's call-graph slice — matches a stored record
    /// are warm-started without any symbolic execution; in
    /// [`CacheMode::ReadWrite`] fresh decisions are written through.
    /// [`CacheMode::Off`] leaves the façade cache-free (no I/O at all).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or opening the store. A
    /// *corrupt* store is not an error: damaged lines are skipped (counted
    /// in `cache_skipped_corrupt`) and the run degrades to cold.
    pub fn with_cache(mut self, dir: &Path, mode: CacheMode) -> std::io::Result<Self> {
        if mode == CacheMode::Off {
            self.cache = None;
            return Ok(self);
        }
        self.cache = Some(Arc::new(DecisionStore::open(dir, mode, self.program)?));
        Ok(self)
    }

    /// Attaches an already-open decision store (shared with other
    /// consumers). See [`Thresher::with_cache`].
    pub fn with_store(mut self, store: Arc<DecisionStore>) -> Self {
        self.cache = Some(store);
        self
    }

    /// The attached decision store, if any.
    pub fn cache(&self) -> Option<&Arc<DecisionStore>> {
        self.cache.as_ref()
    }

    /// The underlying points-to result.
    pub fn points_to(&self) -> &PtaResult {
        &self.pta
    }

    /// The underlying mod/ref summaries.
    pub fn modref(&self) -> &ModRef {
        &self.modref
    }

    /// Cumulative demand-tier statistics, when the façade was built with
    /// [`SolverKind::Demand`] (`None` otherwise).
    pub fn demand_stats(&self) -> Option<DemandStats> {
        self.demand.as_ref().map(|d| *d.lock().expect("demand tier poisoned").stats())
    }

    /// The analyzed program.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Attempts to refute a single may points-to edge. This is the
    /// paper's core operation: a [`SearchOutcome::Refuted`] answer is a
    /// sound proof that no execution produces the edge.
    pub fn refute_edge(&self, edge: &HeapEdge) -> (SearchOutcome, SearchStats) {
        let mut engine = Engine::new(self.program, &*self.pta, &self.modref, self.config.clone());
        let out = engine.refute_edge(edge);
        (out, engine.stats)
    }

    /// Refined heap reachability from global `global_name` to the abstract
    /// location named `loc_name` (e.g. an allocation-site name like
    /// `act0`): edges are refuted and deleted until the endpoints
    /// disconnect or a path is fully witnessed.
    ///
    /// # Panics
    ///
    /// Panics if the global or location name does not exist.
    pub fn query_reachable(&self, global_name: &str, loc_name: &str) -> ReachabilityAnswer {
        let global = self
            .program
            .global_by_name(global_name)
            .unwrap_or_else(|| panic!("no global named {global_name}"));
        let target = self
            .pta
            .locs()
            .ids()
            .find(|&l| self.pta.loc_name(self.program, l) == loc_name)
            .unwrap_or_else(|| panic!("no abstract location named {loc_name}"));
        self.query_reachable_loc(global, target)
    }

    /// Resolves an abstract location by its display name (e.g. `act0` or
    /// `vec0.vec_grown`).
    pub fn resolve_loc(&self, name: &str) -> Option<LocId> {
        self.pta.locs().ids().find(|&l| self.pta.loc_name(self.program, l) == name)
    }

    /// Fallible form of [`Thresher::query_reachable`]: returns `None` when
    /// the global or location name does not exist (instead of panicking).
    pub fn try_query_reachable(
        &self,
        global_name: &str,
        loc_name: &str,
    ) -> Option<ReachabilityAnswer> {
        let global = self.program.global_by_name(global_name)?;
        let target = self.resolve_loc(loc_name)?;
        Some(self.query_reachable_loc(global, target))
    }

    /// [`Thresher::query_reachable`] with resolved ids. Edge decisions go
    /// through a [`RefutationScheduler`], so repeated edges are decided
    /// once per query and, with [`Thresher::with_jobs`], independent edges
    /// are decided in parallel.
    pub fn query_reachable_loc(&self, global: tir::GlobalId, target: LocId) -> ReachabilityAnswer {
        self.query_reachable_loc_tally(global, target).0
    }

    /// [`Thresher::query_reachable_loc`], additionally returning the
    /// scheduler's decision [`Tally`] — the abort provenance callers need
    /// to distinguish a complete refutation from a degraded one (see the
    /// [`exit`] contract).
    pub fn query_reachable_loc_tally(
        &self,
        global: tir::GlobalId,
        target: LocId,
    ) -> (ReachabilityAnswer, Tally) {
        let _span = obs::span_with(obs::SpanKind::Query, || {
            format!(
                "{} ~> {}",
                self.program.global(global).name,
                self.pta.loc_name(self.program, target)
            )
        });
        // With the demand tier, compute (or reuse) the query-relevant slice
        // and run the scheduler against it; out-of-slice lookups resolve
        // against the retained exhaustive oracle.
        let partial;
        let pta: &dyn PtaView = match &self.demand {
            Some(d) => {
                partial = d.lock().expect("demand tier poisoned").query_global(self.program, global).0;
                &*partial
            }
            None => &*self.pta,
        };
        let mut sched = RefutationScheduler::new(
            self.program,
            pta,
            &self.modref,
            self.config.clone(),
            self.jobs,
        );
        if let Some(store) = &self.cache {
            sched.set_store(store.clone());
        }
        let mut view = HeapGraphView::new(pta);
        let job = ReachJob { source: global, targets: BitSet::singleton(target.index()) };
        let outcome = sched.run(&mut view, std::slice::from_ref(&job));
        let answer = match outcome.verdicts.into_iter().next().expect("one verdict per job") {
            JobVerdict::Refuted { refuted_edges } => ReachabilityAnswer::Refuted { refuted_edges },
            JobVerdict::Witnessed { path, witness } => {
                ReachabilityAnswer::Reachable { path, witness }
            }
        };
        (answer, outcome.tally)
    }

    /// Creates an [`EscapeChecker`] over this analysis (the §1
    /// encapsulation/escape client).
    pub fn escape_checker(&self) -> EscapeChecker<'_> {
        let mut checker =
            EscapeChecker::new(self.program, &self.pta, &self.modref, self.config.clone())
                .with_jobs(self.jobs);
        if let Some(store) = &self.cache {
            checker = checker.with_store(store.clone());
        }
        checker
    }

    /// Creates a [`NullClient`] over this analysis (the null-dereference
    /// refutation client; see [`null`]). The client forces
    /// [`SymexConfig::track_null_guards`] on for its own searches.
    pub fn null_client(&self) -> NullClient<'_> {
        let mut client =
            NullClient::new(self.program, &self.pta, &self.modref, self.config.clone())
                .with_jobs(self.jobs);
        if let Some(store) = &self.cache {
            client = client.with_store(store.clone());
        }
        client
    }

    /// Runs the null-dereference client end to end: sentinel-tier
    /// candidate enumeration plus refutation of every candidate site.
    pub fn check_null_derefs(&self) -> NullReport {
        self.null_client().run()
    }

    /// Runs the Android Activity-leak client over this program (requires
    /// the [`android::library`] model to be installed in the program).
    pub fn check_activity_leaks(&self) -> LeakReport {
        let mut client =
            android::LeakClient::new(self.program, &self.pta, &self.modref, self.config.clone())
                .with_jobs(self.jobs);
        if let Some(store) = &self.cache {
            client = client.with_store(store.clone());
        }
        client.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program() -> Program {
        tir::parse(
            r#"
class Box { field item: Object; }
global CACHE: Box;
global FLAG: int;
fn main() {
  var b: Box;
  var secret: Object;
  var s: Object;
  var f: int;
  b = new Box @box0;
  secret = new Object @secret0;
  s = new Object @str0;
  $FLAG = 0;
  f = $FLAG;
  if (f == 1) {
    b.item = secret;
  }
  b.item = s;
  $CACHE = b;
}
entry main;
"#,
        )
        .expect("parse")
    }

    #[test]
    fn facade_reachability() {
        let p = program();
        let t = Thresher::new(&p);
        assert!(t.query_reachable("CACHE", "str0").is_reachable());
        // The secret store is dead code: refuted.
        let answer = t.query_reachable("CACHE", "secret0");
        match answer {
            ReachabilityAnswer::Refuted { refuted_edges } => {
                assert!(!refuted_edges.is_empty());
            }
            other => panic!("expected refutation, got {other:?}"),
        }
    }

    #[test]
    fn facade_demand_solver_matches_exhaustive() {
        let p = program();
        let exhaustive = Thresher::new(&p);
        let opts = PtaOptions { solver: SolverKind::Demand, ..Default::default() };
        let demand = Thresher::with_options(
            &p,
            ContextPolicy::Insensitive,
            SymexConfig::default(),
            &opts,
        );
        assert_eq!(
            exhaustive.query_reachable("CACHE", "str0").is_reachable(),
            demand.query_reachable("CACHE", "str0").is_reachable()
        );
        assert_eq!(
            exhaustive.query_reachable("CACHE", "secret0").is_reachable(),
            demand.query_reachable("CACHE", "secret0").is_reachable()
        );
        let stats = demand.demand_stats().expect("demand tier present");
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.drift, 0, "demand answers drifted from the oracle");
        assert!(exhaustive.demand_stats().is_none());
    }

    #[test]
    fn refute_edge_exposes_stats() {
        let p = program();
        let t = Thresher::new(&p);
        let box0 =
            t.points_to().locs().ids().find(|&l| t.points_to().loc_name(&p, l) == "box0").unwrap();
        let secret = t
            .points_to()
            .locs()
            .ids()
            .find(|&l| t.points_to().loc_name(&p, l) == "secret0")
            .unwrap();
        let c = p.class_by_name("Box").unwrap();
        let f = p.resolve_field(c, "item").unwrap();
        let (out, stats) = t.refute_edge(&HeapEdge::Field { base: box0, field: f, target: secret });
        assert!(out.is_refuted());
        assert!(stats.cmds_executed > 0);
    }
}
