//! Command-line front end: analyze a `.tir` program file.
//!
//! ```text
//! thresher-cli <program.tir> [options]
//!
//! options:
//!   --dump-pta                 print the flow-insensitive points-to graph
//!   --query <GLOBAL> <LOC>     refined reachability from a global to an
//!                              abstract location (repeatable)
//!   --leaks                    run the Android Activity-leak client
//!                              (requires the Android model classes)
//!   --budget <N>               path-program budget per edge (default 10000)
//!   --representation <mixed|symbolic|explicit>
//!   --loops <infer|drop-all>
//!   --no-simplification
//!   --report-out <path>        write a machine-readable RunReport JSON
//!   --trace-out <path>         write a Chrome trace-event JSON
//!                              (Perfetto / chrome://tracing)
//! ```

use std::process::ExitCode;

use thresher::obs::{self, MemRecorder, RingCapacity, SpanKind};
use thresher::{LoopMode, ReachabilityAnswer, Representation, SymexConfig, Thresher};

struct Options {
    path: String,
    dump_pta: bool,
    queries: Vec<(String, String)>,
    leaks: bool,
    config: SymexConfig,
    report_out: Option<String>,
    trace_out: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1).peekable();
    let mut path = None;
    let mut dump_pta = false;
    let mut queries = Vec::new();
    let mut leaks = false;
    let mut config = SymexConfig::default();
    let mut report_out = None;
    let mut trace_out = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--dump-pta" => dump_pta = true,
            "--leaks" => leaks = true,
            "--no-simplification" => config.simplification = false,
            "--query" => {
                let g = args.next().ok_or("--query needs <GLOBAL> <LOC>")?;
                let l = args.next().ok_or("--query needs <GLOBAL> <LOC>")?;
                queries.push((g, l));
            }
            "--budget" => {
                let n = args.next().ok_or("--budget needs a number")?;
                config.budget = n.parse().map_err(|_| format!("bad budget {n}"))?;
            }
            "--representation" => {
                config.representation = match args.next().as_deref() {
                    Some("mixed") => Representation::Mixed,
                    Some("symbolic") => Representation::FullySymbolic,
                    Some("explicit") => Representation::FullyExplicit,
                    other => return Err(format!("bad representation {other:?}")),
                };
            }
            "--loops" => {
                config.loop_mode = match args.next().as_deref() {
                    Some("infer") => LoopMode::Infer,
                    Some("drop-all") => LoopMode::DropAll,
                    other => return Err(format!("bad loop mode {other:?}")),
                };
            }
            "--report-out" => {
                report_out = Some(args.next().ok_or("--report-out needs a path")?);
            }
            "--trace-out" => {
                trace_out = Some(args.next().ok_or("--trace-out needs a path")?);
            }
            other if path.is_none() && !other.starts_with("--") => {
                path = Some(other.to_owned());
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(Options {
        path: path.ok_or("usage: thresher-cli <program.tir> [options]")?,
        dump_pta,
        queries,
        leaks,
        config,
        report_out,
        trace_out,
    })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    // Install the recorder before any analysis so the run span covers
    // everything. The recorder is deliberately static (obs install leaks).
    let recorder = if opts.report_out.is_some() || opts.trace_out.is_some() {
        Some(MemRecorder::install_static(RingCapacity::default()))
    } else {
        None
    };
    let src = match std::fs::read_to_string(&opts.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.path);
            return ExitCode::from(2);
        }
    };
    let program = match tir::parse(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}: parse error: {e}", opts.path);
            return ExitCode::from(1);
        }
    };

    let code = {
        let _run = obs::span_with(SpanKind::Run, || opts.path.clone());
        analyze(&opts, &program)
    };

    if let Some(rec) = recorder {
        if let Err(e) = write_outputs(&opts, rec) {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    }
    code
}

/// The whole analysis, separated out so the `Run` span closes (and is
/// recorded) before the trace/report files are written.
fn analyze(opts: &Options, program: &tir::Program) -> ExitCode {
    let thresher =
        Thresher::with_setup(program, thresher::PointsToPolicy::Insensitive, opts.config.clone());

    if opts.dump_pta {
        println!("== points-to graph ==");
        print!("{}", thresher.points_to().dump(program));
    }

    let mut any_reachable = false;
    for (g, l) in &opts.queries {
        if program.global_by_name(g).is_none() {
            eprintln!("error: no global named {g}");
            return ExitCode::from(2);
        }
        let Some(answer) = thresher.try_query_reachable(g, l) else {
            eprintln!("error: no abstract location named {l}");
            return ExitCode::from(2);
        };
        match answer {
            ReachabilityAnswer::Reachable { path, .. } => {
                any_reachable = true;
                println!("{g} ~> {l}: REACHABLE");
                for e in &path {
                    println!("    {}", e.describe(program, thresher.points_to()));
                }
            }
            ReachabilityAnswer::Refuted { refuted_edges } => {
                println!("{g} ~> {l}: REFUTED ({} edge(s) severed)", refuted_edges.len());
            }
        }
    }

    if opts.leaks {
        let report = thresher.check_activity_leaks();
        println!(
            "== activity leaks: {} alarm(s), {} refuted ==",
            report.num_alarms(),
            report.num_refuted()
        );
        for (alarm, result) in &report.alarms {
            let verdict = if result.is_refuted() { "filtered" } else { "LEAK" };
            println!("  {verdict}: {}", program.global(alarm.field).name);
            any_reachable |= !result.is_refuted();
        }
    }

    if any_reachable {
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    }
}

fn write_outputs(opts: &Options, rec: &MemRecorder) -> Result<(), String> {
    if let Some(path) = &opts.report_out {
        let report = rec.run_report(&[("program", &opts.path), ("tool", "thresher-cli")]);
        std::fs::write(path, report.to_json())
            .map_err(|e| format!("cannot write report {path}: {e}"))?;
    }
    if let Some(path) = &opts.trace_out {
        std::fs::write(path, rec.chrome_trace())
            .map_err(|e| format!("cannot write trace {path}: {e}"))?;
    }
    Ok(())
}
