//! Command-line front end: analyze a `.tir` program file.
//!
//! ```text
//! thresher-cli <program.tir> [options]
//! thresher-cli --diff-reports <a.json> <b.json>
//!
//! options:
//!   --dump-pta                 print the flow-insensitive points-to graph
//!   --edit-script <FILE>       apply an NDJSON edit script through the
//!                              incremental delta solver (one batch per
//!                              line), then analyze the edited program
//!   --query <GLOBAL> <LOC>     refined reachability from a global to an
//!                              abstract location (repeatable)
//!   --leaks                    run the Android Activity-leak client
//!                              (requires the Android model classes)
//!   --client null              run the null-dereference refutation
//!                              client: sentinel-tier candidate
//!                              enumeration plus a refutation query per
//!                              dereference site (exit 1 on surviving
//!                              alarms, like --leaks)
//!   --jobs <N>                 refutation worker threads (default: all
//!                              cores; 1 = sequential; reported numbers are
//!                              identical for every setting)
//!   --budget <N>               path-program budget per edge (default 10000)
//!   --representation <mixed|symbolic|explicit>
//!   --loops <infer|drop-all>
//!   --no-simplification
//!   --pta-solver <delta|reference|demand>
//!                              points-to fixpoint strategy (default: delta;
//!                              reference is the full-set differential
//!                              oracle — both produce identical results;
//!                              demand answers each query from an
//!                              oracle-gated slice of the graph)
//!   --pta-stats                print points-to solver counters (nodes,
//!                              instances, propagations, deltas pushed,
//!                              SCCs collapsed) after the analysis
//!   --report-out <path>        write a machine-readable RunReport JSON
//!   --trace-out <path>         write a Chrome trace-event JSON
//!                              (Perfetto / chrome://tracing)
//!   --cache-dir <DIR>          persistent refutation cache directory:
//!                              edge decisions are fingerprinted and
//!                              warm-started across runs; editing a method
//!                              invalidates exactly the decisions whose
//!                              call-graph slice contains it
//!   --cache <read-write|read|off>
//!                              cache mode (default read-write when
//!                              --cache-dir is given; off otherwise)
//!
//! --diff-reports compares two RunReport JSON files modulo timing: the
//! meta block, *_ns/*_us histograms, dropped_trace_events, and
//! trace_threads are excluded. `cache_*` counters are also excluded —
//! they report cache effectiveness (cold vs warm), never analysis
//! results, and the incremental gate compares cold and warm reports. Exits 0 when equivalent, 1 when not — the
//! CI determinism gate for `--jobs`. When the two reports record different
//! `pta_solver` strategies, the strategy-dependent solver metrics
//! (propagation/delta/SCC counters, worklist and delta-size histograms)
//! are additionally excluded, so delta-vs-reference runs must agree on
//! every *result*-derived number.
//!
//! Exit codes follow the contract in `thresher::exit`, shared with
//! `thresher-serve`: 0 = completed with nothing reachable, 1 = completed
//! with findings (a reachable query or surviving leak), 2 = completed
//! without findings but with aborted (deadline/budget) searches, 64 =
//! usage error, 65 = parse error, 66 = unreadable input, 74 = output or
//! cache I/O error.
//! ```

use std::process::ExitCode;

use thresher::exit;
use thresher::obs::json::{self, Value};
use thresher::obs::{self, Counter, MemRecorder, RingCapacity, SpanKind};
use thresher::{
    CacheMode, LoopMode, PtaOptions, ReachabilityAnswer, Representation, SolverKind, SymexConfig,
    Thresher,
};

struct Options {
    path: String,
    edit_script: Option<String>,
    dump_pta: bool,
    queries: Vec<(String, String)>,
    leaks: bool,
    client_null: bool,
    jobs: usize,
    config: SymexConfig,
    pta_solver: SolverKind,
    pta_stats: bool,
    report_out: Option<String>,
    trace_out: Option<String>,
    cache_dir: Option<String>,
    cache_mode: CacheMode,
}

enum Mode {
    Analyze(Box<Options>),
    DiffReports(String, String),
}

fn parse_args() -> Result<Mode, String> {
    let mut args = std::env::args().skip(1).peekable();
    let mut path = None;
    let mut edit_script = None;
    let mut dump_pta = false;
    let mut queries = Vec::new();
    let mut leaks = false;
    let mut client_null = false;
    let mut jobs = thresher::default_jobs();
    let mut config = SymexConfig::default();
    let mut pta_solver = SolverKind::default();
    let mut pta_stats = false;
    let mut report_out = None;
    let mut trace_out = None;
    let mut cache_dir = None;
    let mut cache_mode = CacheMode::ReadWrite;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--diff-reports" => {
                let a = args.next().ok_or("--diff-reports needs <a.json> <b.json>")?;
                let b = args.next().ok_or("--diff-reports needs <a.json> <b.json>")?;
                return Ok(Mode::DiffReports(a, b));
            }
            "--dump-pta" => dump_pta = true,
            "--edit-script" => {
                edit_script = Some(args.next().ok_or("--edit-script needs a path")?);
            }
            "--leaks" => leaks = true,
            "--client" => match args.next().as_deref() {
                Some("null") => client_null = true,
                other => return Err(format!("bad client {other:?} (expected: null)")),
            },
            "--no-simplification" => config.simplification = false,
            "--query" => {
                let g = args.next().ok_or("--query needs <GLOBAL> <LOC>")?;
                let l = args.next().ok_or("--query needs <GLOBAL> <LOC>")?;
                queries.push((g, l));
            }
            "--jobs" => {
                let n = args.next().ok_or("--jobs needs a number")?;
                jobs = n.parse::<usize>().map_err(|_| format!("bad jobs {n}"))?.max(1);
            }
            "--budget" => {
                let n = args.next().ok_or("--budget needs a number")?;
                config.budget = n.parse().map_err(|_| format!("bad budget {n}"))?;
            }
            "--representation" => {
                config.representation = match args.next().as_deref() {
                    Some("mixed") => Representation::Mixed,
                    Some("symbolic") => Representation::FullySymbolic,
                    Some("explicit") => Representation::FullyExplicit,
                    other => return Err(format!("bad representation {other:?}")),
                };
            }
            "--loops" => {
                config.loop_mode = match args.next().as_deref() {
                    Some("infer") => LoopMode::Infer,
                    Some("drop-all") => LoopMode::DropAll,
                    other => return Err(format!("bad loop mode {other:?}")),
                };
            }
            "--pta-solver" => {
                let k = args.next().ok_or("--pta-solver needs <delta|reference|demand>")?;
                pta_solver = k.parse()?;
            }
            "--pta-stats" => pta_stats = true,
            "--report-out" => {
                report_out = Some(args.next().ok_or("--report-out needs a path")?);
            }
            "--trace-out" => {
                trace_out = Some(args.next().ok_or("--trace-out needs a path")?);
            }
            "--cache-dir" => {
                cache_dir = Some(args.next().ok_or("--cache-dir needs a directory")?);
            }
            "--cache" => {
                let m = args.next().ok_or("--cache needs <read-write|read|off>")?;
                cache_mode = m.parse()?;
            }
            other if path.is_none() && !other.starts_with("--") => {
                path = Some(other.to_owned());
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(Mode::Analyze(Box::new(Options {
        path: path.ok_or("usage: thresher-cli <program.tir> [options]")?,
        edit_script,
        dump_pta,
        queries,
        leaks,
        client_null,
        jobs,
        config,
        pta_solver,
        pta_stats,
        report_out,
        trace_out,
        cache_dir,
        cache_mode,
    })))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Mode::Analyze(o)) => *o,
        Ok(Mode::DiffReports(a, b)) => {
            return match diff_reports(&a, &b) {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) => ExitCode::from(1),
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::from(exit::NOINPUT)
                }
            };
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(exit::USAGE);
        }
    };
    // Install the recorder before any analysis so the run span covers
    // everything. The recorder is deliberately static (obs install leaks).
    // --pta-stats also needs it: the solver counters only accumulate when
    // a recorder is installed.
    let recorder = if opts.report_out.is_some() || opts.trace_out.is_some() || opts.pta_stats {
        Some(MemRecorder::install_static(RingCapacity::default()))
    } else {
        None
    };
    let src = match std::fs::read_to_string(&opts.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.path);
            return ExitCode::from(exit::NOINPUT);
        }
    };
    let mut program = match tir::parse(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}: parse error: {e}", opts.path);
            return ExitCode::from(exit::DATAERR);
        }
    };
    if let Some(script) = &opts.edit_script {
        if let Err(e) = run_edit_script(&mut program, script) {
            eprintln!("error: {e}");
            return ExitCode::from(exit::DATAERR);
        }
    }

    let code = {
        let _run = obs::span_with(SpanKind::Run, || opts.path.clone());
        analyze(&opts, &program)
    };

    if let Some(rec) = recorder {
        if opts.pta_stats {
            print_pta_stats(&opts, rec);
        }
        if let Err(e) = write_outputs(&opts, rec) {
            eprintln!("error: {e}");
            return ExitCode::from(exit::IOERR);
        }
    }
    code
}

/// Applies an NDJSON edit script through the incremental delta solver:
/// each line is one batch — a JSON array of `{op, ...}` objects (or a
/// single object). Per-batch cost is printed, the incremental state is
/// checked against a from-scratch reference solve after every batch, and
/// `program` ends up as the fully edited version the rest of the run
/// analyzes.
fn run_edit_script(program: &mut tir::Program, path: &str) -> Result<(), String> {
    use thresher::serve::protocol::edit_op_from_value;

    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let policy = thresher::PointsToPolicy::Insensitive;
    let mut inc = pta::IncrementalPta::new(program, policy.clone(), &PtaOptions::default());
    println!("== edit script {path} ==");
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        let ops: Vec<tir::EditOp> = match &v {
            Value::Arr(items) => items
                .iter()
                .map(edit_op_from_value)
                .collect::<Result<_, _>>()
                .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?,
            _ => vec![edit_op_from_value(&v).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?],
        };
        let applied =
            tir::apply_edits(program, &ops).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        let stats = inc.apply_edits(program, &applied);
        println!(
            "  batch {}: ops={} propagations={} rebuilt={} dirty_nodes={} changed_methods={}",
            lineno + 1,
            applied.len(),
            stats.propagations,
            stats.rebuilt,
            stats.dirty_nodes,
            stats.changed_methods.len(),
        );
        let reference = pta::analyze_with(
            program,
            policy.clone(),
            &PtaOptions { solver: SolverKind::Reference, ..Default::default() },
        );
        if pta::canonical_text(program, &inc.result(program))
            != pta::canonical_text(program, &reference)
        {
            return Err(format!(
                "{path}:{}: incremental state diverged from a from-scratch solve",
                lineno + 1
            ));
        }
    }
    Ok(())
}

/// Prints the points-to solver counters accumulated in the obs registry.
fn print_pta_stats(opts: &Options, rec: &MemRecorder) {
    println!("== pta stats ({} solver) ==", opts.pta_solver.name());
    for (label, counter) in [
        ("nodes", Counter::PtaNodes),
        ("method instances", Counter::PtaInstances),
        ("propagations", Counter::PtaPropagations),
        ("deltas pushed", Counter::PtaDeltasPushed),
        ("sccs collapsed", Counter::PtaSccsCollapsed),
    ] {
        println!("  {label}: {}", rec.counter(counter));
    }
}

/// The whole analysis, separated out so the `Run` span closes (and is
/// recorded) before the trace/report files are written.
fn analyze(opts: &Options, program: &tir::Program) -> ExitCode {
    let mut thresher = Thresher::with_options(
        program,
        thresher::PointsToPolicy::Insensitive,
        opts.config.clone(),
        &PtaOptions { solver: opts.pta_solver, ..Default::default() },
    )
    .with_jobs(opts.jobs);
    if let Some(dir) = &opts.cache_dir {
        if opts.cache_mode != CacheMode::Off {
            thresher = match thresher.with_cache(std::path::Path::new(dir), opts.cache_mode) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot open cache {dir}: {e}");
                    return ExitCode::from(exit::IOERR);
                }
            };
        }
    }

    if opts.dump_pta {
        println!("== points-to graph ==");
        print!("{}", thresher.points_to().dump(program));
    }

    let mut outcome = exit::Outcome::new();
    for (g, l) in &opts.queries {
        let Some(global) = program.global_by_name(g) else {
            eprintln!("error: no global named {g}");
            return ExitCode::from(exit::USAGE);
        };
        let Some(target) = thresher.resolve_loc(l) else {
            eprintln!("error: no abstract location named {l}");
            return ExitCode::from(exit::USAGE);
        };
        let (answer, tally) = thresher.query_reachable_loc_tally(global, target);
        outcome.record_aborts(tally.edge_timeouts > 0);
        match answer {
            ReachabilityAnswer::Reachable { path, .. } => {
                outcome.record_findings(true);
                println!("{g} ~> {l}: REACHABLE");
                for e in &path {
                    println!("    {}", e.describe(program, thresher.points_to()));
                }
            }
            ReachabilityAnswer::Refuted { refuted_edges } => {
                println!("{g} ~> {l}: REFUTED ({} edge(s) severed)", refuted_edges.len());
            }
        }
    }

    if opts.client_null {
        let report = thresher.check_null_derefs();
        print!("{}", report.describe(program));
        outcome.record_findings(!report.is_null_safe());
        outcome.record_aborts(report.edge_timeouts > 0);
    }

    if opts.leaks {
        let report = thresher.check_activity_leaks();
        println!(
            "== activity leaks: {} alarm(s), {} refuted ==",
            report.num_alarms(),
            report.num_refuted()
        );
        for (alarm, result) in &report.alarms {
            let verdict = if result.is_refuted() { "filtered" } else { "LEAK" };
            println!("  {verdict}: {}", program.global(alarm.field).name);
            outcome.record_findings(!result.is_refuted());
        }
        outcome.record_aborts(report.stats.edge_timeouts > 0);
    }

    ExitCode::from(outcome.code())
}

fn write_outputs(opts: &Options, rec: &MemRecorder) -> Result<(), String> {
    if let Some(path) = &opts.report_out {
        let report = rec.run_report(&[
            ("program", &opts.path),
            ("tool", "thresher-cli"),
            ("pta_solver", opts.pta_solver.name()),
        ]);
        std::fs::write(path, report.to_json())
            .map_err(|e| format!("cannot write report {path}: {e}"))?;
        eprintln!(
            "report: {} trace event(s) recorded, {} dropped, {} thread(s) -> {path}",
            rec.events().len(),
            rec.dropped_events(),
            rec.trace_threads(),
        );
    }
    if let Some(path) = &opts.trace_out {
        std::fs::write(path, rec.chrome_trace())
            .map_err(|e| format!("cannot write trace {path}: {e}"))?;
    }
    Ok(())
}

/// Compares two run-report JSON files modulo timing-dependent data.
///
/// Excluded from the comparison: the `meta` object (paths/config strings),
/// any histogram whose name ends in `_ns` or `_us` (wall-clock
/// observations), `dropped_trace_events`, and `trace_threads` (both are
/// functions of trace volume and thread count, not of analysis results),
/// and `cache_*` counters (cold/warm cache effectiveness, never results —
/// the incremental gate compares cold and warm reports directly).
/// Everything else — every counter and every deterministic histogram — must
/// match exactly. Prints each difference; returns `Ok(true)` when
/// equivalent.
fn diff_reports(path_a: &str, path_b: &str) -> Result<bool, String> {
    let load = |path: &str| -> Result<Value, String> {
        let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        json::parse(&src).map_err(|e| format!("{path}: bad JSON: {e:?}"))
    };
    let a = load(path_a)?;
    let b = load(path_b)?;
    let mut same = true;
    let mut differ = |what: &str, va: String, vb: String| {
        println!("differs: {what}: {va} ({path_a}) vs {vb} ({path_b})");
        same = false;
    };

    let schema_of = |v: &Value| v.get("schema").and_then(Value::as_str).unwrap_or("?").to_owned();
    if schema_of(&a) != schema_of(&b) {
        differ("schema", schema_of(&a), schema_of(&b));
    }

    // When the reports come from different fixpoint strategies, counters
    // that measure *how* the fixpoint was reached (rather than what it is)
    // legitimately differ; everything result-derived must still match.
    let solver_of = |v: &Value| {
        v.get("meta").and_then(|m| m.get("pta_solver")).and_then(Value::as_str).map(str::to_owned)
    };
    let cross_solver = solver_of(&a) != solver_of(&b);
    const STRATEGY_COUNTERS: [&str; 8] = [
        "pta_propagations",
        "pta_deltas_pushed",
        "pta_sccs_collapsed",
        "pta_drainlog_compactions",
        "pta_demand_queries",
        "pta_demand_fallbacks",
        "pta_demand_drift",
        "pta_demand_nodes_touched",
    ];
    const STRATEGY_HISTS: [&str; 2] = ["pta_worklist_len", "pta_delta_size"];

    // Counters: compare the union of keys so a missing counter is a
    // difference, not a silent skip.
    let obj_keys = |v: &Value, section: &str| -> Vec<String> {
        match v.get(section) {
            Some(Value::Obj(pairs)) => pairs.iter().map(|(k, _)| k.clone()).collect(),
            _ => Vec::new(),
        }
    };
    let mut counter_keys = obj_keys(&a, "counters");
    for k in obj_keys(&b, "counters") {
        if !counter_keys.contains(&k) {
            counter_keys.push(k);
        }
    }
    for key in &counter_keys {
        if key.starts_with("cache_") {
            continue; // cache-effectiveness metric (cold vs warm): differs by design
        }
        if cross_solver && STRATEGY_COUNTERS.contains(&key.as_str()) {
            continue; // fixpoint-strategy metric: differs by design
        }
        let get = |v: &Value| {
            v.get("counters")
                .and_then(|c| c.get(key))
                .and_then(Value::as_u64)
                .map_or_else(|| "<missing>".to_owned(), |n| n.to_string())
        };
        let (va, vb) = (get(&a), get(&b));
        if va != vb {
            differ(&format!("counter {key}"), va, vb);
        }
    }

    let mut hist_keys = obj_keys(&a, "histograms");
    for k in obj_keys(&b, "histograms") {
        if !hist_keys.contains(&k) {
            hist_keys.push(k);
        }
    }
    for key in &hist_keys {
        if key.ends_with("_ns") || key.ends_with("_us") {
            continue; // wall-clock histogram: timing-dependent by design
        }
        if cross_solver && STRATEGY_HISTS.contains(&key.as_str()) {
            continue; // fixpoint-strategy metric: differs by design
        }
        let get = |v: &Value| {
            v.get("histograms")
                .and_then(|h| h.get(key))
                .map_or_else(|| "<missing>".to_owned(), Value::to_json)
        };
        let (va, vb) = (get(&a), get(&b));
        if va != vb {
            differ(&format!("histogram {key}"), va, vb);
        }
    }

    if same {
        println!("reports are equivalent (modulo timing): {path_a} == {path_b}");
    }
    Ok(same)
}
