//! `thresher-serve` — the resident analysis daemon (see `thresher::serve`).
//!
//! ```text
//! thresher-serve [options]
//!
//! options:
//!   --listen <addr:port>       additionally accept TCP clients (newline-
//!                              delimited JSON, same protocol as stdio)
//!   --workers <N>              request-handler threads (default 2)
//!   --jobs <N>                 refutation threads per request (default 1)
//!   --queue-cap <N>            pending-queue bound; beyond it requests are
//!                              shed with retry_after_ms (default 64)
//!   --max-resident <N>         resident-program bound, LRU eviction
//!                              (default 8)
//!   --deadline-ms <N>          default per-request deadline (default 60000;
//!                              params.deadline_ms overrides per request)
//!   --global-budget <N>        global path-program budget divided fairly
//!                              among in-flight requests (default
//!                              10000 x workers)
//!   --rate <N>                 per-client token-bucket refill, requests/s
//!                              (default 100)
//!   --burst <N>                per-client token-bucket capacity
//!                              (default 200)
//!   --cache-dir <DIR>          root for per-program persistent decision
//!                              stores (default: no cache)
//!   --cache-bytes <N>          per-program store byte cap; past it the
//!                              store compacts, keeping recently hit
//!                              records (default 4194304)
//!   --inject                   honor the "inject" request parameter
//!                              (fault injection; dev/test only)
//!   --report-out <path>        write the daemon-lifetime RunReport JSON on
//!                              exit
//!   --metrics-addr <addr:port> serve Prometheus text exposition
//!                              (counters, gauges, histogram buckets,
//!                              sliding-window quantiles) over HTTP GET
//!   --window <N>               sliding-window size for latency/queue
//!                              quantiles (default 512 samples)
//!   --slow-log <path>          append span tree + cost block of slow
//!                              requests to a bounded JSONL file
//!   --slow-threshold-ms <N>    requests at or above this wall time go to
//!                              the slow log (default 1000)
//!   --slow-log-bytes <N>       slow-log size cap; past it the oldest half
//!                              is truncated away (default 1048576)
//!
//! The daemon serves requests from stdin and answers on stdout, one JSON
//! object per line (see thresher::serve::protocol). It exits — after
//! finishing queued and in-flight work — on stdin EOF, a "shutdown"
//! request, or SIGTERM, with exit code 0; startup errors use the exit
//! contract in thresher::exit (64 usage, 74 I/O).
//! ```

use std::process::ExitCode;

use thresher::exit;
use thresher::obs::{MemRecorder, RingCapacity};
use thresher::serve::{request_drain, Daemon, ServeConfig};

struct Options {
    config: ServeConfig,
    listen: Option<String>,
    metrics_addr: Option<String>,
    report_out: Option<String>,
}

fn next_num(args: &mut impl Iterator<Item = String>, what: &str) -> Result<u64, String> {
    let n = args.next().ok_or(format!("{what} needs a number"))?;
    n.parse().map_err(|_| format!("bad {what} value {n}"))
}

fn parse_args() -> Result<Options, String> {
    let mut config = ServeConfig::default();
    let mut listen = None;
    let mut metrics_addr = None;
    let mut report_out = None;
    let mut global_budget = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--listen" => {
                listen = Some(args.next().ok_or("--listen needs <addr:port>")?);
            }
            "--workers" => config.workers = next_num(&mut args, "--workers")?.max(1) as usize,
            "--jobs" => config.jobs = next_num(&mut args, "--jobs")?.max(1) as usize,
            "--queue-cap" => config.queue_cap = next_num(&mut args, "--queue-cap")? as usize,
            "--max-resident" => {
                config.max_resident = next_num(&mut args, "--max-resident")?.max(1) as usize;
            }
            "--deadline-ms" => {
                config.request_deadline =
                    std::time::Duration::from_millis(next_num(&mut args, "--deadline-ms")?);
            }
            "--global-budget" => global_budget = Some(next_num(&mut args, "--global-budget")?),
            "--rate" => config.rate_per_sec = next_num(&mut args, "--rate")? as f64,
            "--burst" => config.burst = next_num(&mut args, "--burst")?.max(1) as f64,
            "--cache-dir" => {
                config.cache_root =
                    Some(args.next().ok_or("--cache-dir needs a directory")?.into());
            }
            "--cache-bytes" => config.cache_bytes_cap = next_num(&mut args, "--cache-bytes")?,
            "--inject" => config.inject = true,
            "--report-out" => {
                report_out = Some(args.next().ok_or("--report-out needs a path")?);
            }
            "--metrics-addr" => {
                metrics_addr = Some(args.next().ok_or("--metrics-addr needs <addr:port>")?);
            }
            "--window" => config.window = next_num(&mut args, "--window")?.max(1) as usize,
            "--slow-log" => {
                config.slow_log = Some(args.next().ok_or("--slow-log needs a path")?.into());
            }
            "--slow-threshold-ms" => {
                config.slow_threshold =
                    std::time::Duration::from_millis(next_num(&mut args, "--slow-threshold-ms")?);
            }
            "--slow-log-bytes" => {
                config.slow_log_bytes_cap = next_num(&mut args, "--slow-log-bytes")?;
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    // The fair-share default tracks the (possibly overridden) worker count.
    config.global_budget = global_budget.unwrap_or(10_000 * config.workers as u64);
    Ok(Options { config, listen, metrics_addr, report_out })
}

/// Routes SIGTERM to the drain flag. `signal(2)` with a plain function
/// pointer is the one installation path that needs no libc binding beyond
/// the symbol itself, and the handler body is a single atomic store —
/// async-signal-safe. glibc's `signal` applies SA_RESTART, so a blocked
/// stdin read continues; the drain takes effect at the next line or EOF.
#[cfg(unix)]
fn install_sigterm_handler() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    extern "C" fn on_term(_sig: i32) {
        request_drain();
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(exit::USAGE);
        }
    };

    // The recorder is always installed, not just under --report-out:
    // per-request cost blocks, the metrics exposition, and the slow log are
    // all carved out of captured deltas, and obs::capture only buffers
    // while a recorder is live.
    let recorder = MemRecorder::install_static(RingCapacity::default());

    install_sigterm_handler();

    let daemon = Daemon::new(opts.config);
    if let Some(addr) = &opts.listen {
        let listener = match std::net::TcpListener::bind(addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error: cannot listen on {addr}: {e}");
                return ExitCode::from(exit::IOERR);
            }
        };
        if let Err(e) = daemon.start_listener(listener) {
            eprintln!("error: cannot start listener on {addr}: {e}");
            return ExitCode::from(exit::IOERR);
        }
        eprintln!("thresher-serve: listening on {addr}");
    }
    if let Some(addr) = &opts.metrics_addr {
        let listener = match std::net::TcpListener::bind(addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error: cannot listen on {addr}: {e}");
                return ExitCode::from(exit::IOERR);
            }
        };
        if let Err(e) = daemon.start_metrics_listener(listener) {
            eprintln!("error: cannot start metrics listener on {addr}: {e}");
            return ExitCode::from(exit::IOERR);
        }
        eprintln!("thresher-serve: metrics on {addr}");
    }

    let stdin = std::io::stdin();
    let summary = daemon.run(stdin.lock(), std::io::stdout());
    // Resident programs (and their decision stores, flushing appends and
    // releasing advisory locks) drop here, before the final report.
    drop(daemon);

    eprintln!(
        "thresher-serve: drained; {} admitted, {} completed, {} shed, {} panicked, \
         {} timed out, {} evicted",
        summary.admitted,
        summary.completed,
        summary.shed,
        summary.panicked,
        summary.timed_out,
        summary.evicted,
    );

    if let Some(path) = &opts.report_out {
        let report = recorder.run_report(&[("tool", "thresher-serve")]);
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("error: cannot write report {path}: {e}");
            return ExitCode::from(exit::IOERR);
        }
        eprintln!("thresher-serve: report -> {path}");
    }
    ExitCode::from(exit::OK)
}
