//! Additional heap-reachability clients (§1 of the paper motivates these:
//! "a heap reachability checker would also enable a developer to write
//! statically checkable assertions about, for example, object lifetimes,
//! encapsulation of fields, or immutability of objects").
//!
//! [`EscapeChecker`] decides, with refutation-backed precision, whether
//! instances of a class (or of one allocation site) can *escape* to a
//! static field — the generalization of the Activity-leak client to any
//! type.

use std::sync::Arc;

use pta::{BitSet, HeapEdge, HeapGraphView, LocId, ModRef, PtaResult};
use symex::{AbortCounts, DecisionStore, JobVerdict, ReachJob, RefutationScheduler, SymexConfig};
use tir::{ClassId, GlobalId, Program};

/// One escaping-object finding.
#[derive(Clone, Debug)]
pub struct Escape {
    /// The static field the object escapes through.
    pub global: GlobalId,
    /// The escaping instance's abstract location.
    pub target: LocId,
    /// The surviving heap path.
    pub path: Vec<HeapEdge>,
}

/// Result of an escape check.
#[derive(Debug)]
pub struct EscapeReport {
    /// Surviving (unrefuted) escapes.
    pub escapes: Vec<Escape>,
    /// (global, target) pairs claimed by the points-to graph but refuted.
    pub refuted_pairs: usize,
    /// Edges refuted along the way.
    pub edges_refuted: usize,
    /// Edge timeouts (treated as escapes, soundly): total aborted edges.
    pub edge_timeouts: usize,
    /// Abort counts by reason (`edge_timeouts` broken down).
    pub aborts: AbortCounts,
    /// Extra (degraded) refutation attempts beyond the strict first pass.
    pub retries: usize,
    /// Edges decided only by a coarsened retry.
    pub degraded_decisions: usize,
}

impl EscapeReport {
    /// True if no instance escapes — the encapsulation assertion holds.
    pub fn is_encapsulated(&self) -> bool {
        self.escapes.is_empty()
    }
}

/// Refutation-backed escape analysis over one analyzed program.
pub struct EscapeChecker<'a> {
    program: &'a Program,
    pta: &'a PtaResult,
    modref: &'a ModRef,
    config: SymexConfig,
    jobs: usize,
    store: Option<Arc<DecisionStore>>,
}

impl<'a> EscapeChecker<'a> {
    /// Creates a checker over existing analysis results (sequential
    /// refutation; see [`EscapeChecker::with_jobs`]).
    pub fn new(
        program: &'a Program,
        pta: &'a PtaResult,
        modref: &'a ModRef,
        config: SymexConfig,
    ) -> Self {
        EscapeChecker { program, pta, modref, config, jobs: 1, store: None }
    }

    /// Sets the refutation-scheduler thread count (1 = sequential; the
    /// report is identical for every setting).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Attaches a persistent decision store: every check warm-starts
    /// from it and (in read-write mode) writes decisions through.
    pub fn with_store(mut self, store: Arc<DecisionStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Checks whether any instance of `class` (or a subclass) can be
    /// reached from any static field.
    pub fn check_class(&self, class: ClassId) -> EscapeReport {
        self.check_targets(self.pta.locs_of_class(self.program, class))
    }

    /// Checks whether any instance allocated at the site named
    /// `alloc_name` can be reached from any static field.
    ///
    /// # Panics
    ///
    /// Panics if no abstract location carries that name.
    pub fn check_site(&self, alloc_name: &str) -> EscapeReport {
        let targets: BitSet = self
            .pta
            .locs()
            .ids()
            .filter(|&l| self.pta.loc_name(self.program, l) == alloc_name)
            .map(|l| l.index())
            .collect();
        assert!(!targets.is_empty(), "no abstract location named {alloc_name}");
        self.check_targets(targets)
    }

    /// The general form: refute reachability from every global to every
    /// location in `targets`, sharing the edge-decision cache across pairs
    /// (and, with `jobs > 1`, deciding independent edges in parallel).
    pub fn check_targets(&self, targets: BitSet) -> EscapeReport {
        let _span = obs::span(obs::SpanKind::Client, "escape-checker");
        let mut sched = RefutationScheduler::new(
            self.program,
            self.pta,
            self.modref,
            self.config.clone(),
            self.jobs,
        );
        if let Some(store) = &self.store {
            sched.set_store(store.clone());
        }
        let mut view = HeapGraphView::new(self.pta);
        let mut pairs = Vec::new();
        let mut jobs = Vec::new();
        for global in self.program.global_ids() {
            for t in targets.iter() {
                pairs.push((global, LocId(t as u32)));
                jobs.push(ReachJob { source: global, targets: BitSet::singleton(t) });
            }
        }
        let outcome = sched.run(&mut view, &jobs);
        let t = &outcome.tally;
        let mut report = EscapeReport {
            escapes: Vec::new(),
            refuted_pairs: 0,
            edges_refuted: t.edges_refuted as usize,
            edge_timeouts: t.edge_timeouts as usize,
            aborts: t.aborts.clone(),
            retries: t.retries as usize,
            degraded_decisions: t.degraded_decisions as usize,
        };
        for ((global, target), verdict) in pairs.into_iter().zip(outcome.verdicts) {
            match verdict {
                JobVerdict::Refuted { .. } => report.refuted_pairs += 1,
                JobVerdict::Witnessed { path, .. } => {
                    report.escapes.push(Escape { global, target, path });
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pta::ContextPolicy;

    fn setup(src: &str) -> (Program, PtaResult, ModRef) {
        let p = tir::parse(src).expect("parse");
        let r = pta::analyze(&p, ContextPolicy::Insensitive);
        let m = ModRef::compute(&p, &r);
        (p, r, m)
    }

    const SRC: &str = r#"
class Secret { }
class Public { }
class Box { field item: Object; }
global SHARED: Box;
fn main() {
  var b: Box;
  var s: Secret;
  var pu: Public;
  var flag: int;
  b = new Box @box0;
  s = new Secret @secret0;
  pu = new Public @public0;
  flag = 0;
  if (flag == 1) {
    b.item = s;
  }
  b.item = pu;
  $SHARED = b;
}
entry main;
"#;

    #[test]
    fn secret_is_encapsulated_public_escapes() {
        let (p, r, m) = setup(SRC);
        let checker = EscapeChecker::new(&p, &r, &m, SymexConfig::default());

        let secret = p.class_by_name("Secret").unwrap();
        let report = checker.check_class(secret);
        assert!(report.is_encapsulated(), "{report:?}");
        assert!(report.edges_refuted > 0);

        let public = p.class_by_name("Public").unwrap();
        let report = checker.check_class(public);
        assert!(!report.is_encapsulated());
        assert_eq!(report.escapes.len(), 1);
        assert_eq!(report.escapes[0].path.len(), 2);
    }

    #[test]
    fn check_site_by_name() {
        let (p, r, m) = setup(SRC);
        let checker = EscapeChecker::new(&p, &r, &m, SymexConfig::default());
        assert!(checker.check_site("secret0").is_encapsulated());
        assert!(!checker.check_site("public0").is_encapsulated());
        assert!(checker.check_site("box0").escapes.len() == 1);
    }

    #[test]
    #[should_panic(expected = "no abstract location named nope")]
    fn unknown_site_panics() {
        let (p, r, m) = setup(SRC);
        EscapeChecker::new(&p, &r, &m, SymexConfig::default()).check_site("nope");
    }
}
