//! Null-dereference refutation client.
//!
//! The classic refinement client the paper's §1 gestures at: a cheap
//! over-approximate front end proposes *candidate* null dereferences, and
//! the backwards witness search either refutes each one (a sound proof the
//! base is non-null on every path reaching the site) or produces a path
//! program witnessing the flow of `null` into the dereferenced local.
//!
//! ## The null-sentinel tier
//!
//! The flow-insensitive points-to analysis ([`pta`]) tracks only proper
//! allocation sites; `null` is represented by *absence*. This client adds
//! the missing sentinel as a client-side lattice over the same graph: a
//! fixpoint marks every variable, field cell `(loc, field)`, global, and
//! method return whose may-value set contains the sentinel, seeded by
//!
//! - explicit `null` operands (assignments, field/global writes, call
//!   arguments, returns),
//! - globals never written on any path (statics are null at program
//!   entry), and never-written field cells (fields are null at birth),
//! - array `contents` cells unconditionally (elements are null at birth
//!   and proving full initialization is exactly the path-sensitive
//!   engine's job — the paper's Figure 1 motif).
//!
//! and propagated through assignments, heap reads, call parameter binding
//! (excluding receivers: a null receiver faults *at the call*, which is
//! its own dereference site, and therefore never reaches a callee's
//! `this`), and returns along the points-to call graph.
//!
//! A *candidate site* is any field read/write, array access, or virtual
//! call whose base local carries the sentinel. Each candidate becomes a
//! [`DerefSite`] query — "can `null` flow into `base` at this command?" —
//! decided by the full refutation stack: the parallel
//! [`RefutationScheduler`], the persistent decision cache, and
//! [`SymexConfig::track_null_guards`] strong updates (forced on for this
//! client; null-comparison guards are the idiomatic defense).
//!
//! ## Known blind spot (front end, not engine)
//!
//! The sentinel tier is flow-insensitive, so a field or global that *is*
//! written a non-null value somewhere is only marked when the written
//! value itself may be null — a read that precedes the sole initializing
//! write is missed (no candidate is proposed; nothing unsound is ever
//! *reported*). Array contents are exempt: they are always sentinel-
//! bearing, which is why the Figure 1 vector motif is caught. See
//! DESIGN.md §19.
//!
//! [`SymexConfig::track_null_guards`]: symex::SymexConfig

use std::collections::HashSet;
use std::sync::Arc;

use obs::json::Value;
use pta::{ModRef, PtaResult};
use symex::{
    AbortCounts, DecisionStore, DerefSite, EdgeAnswer, RefutationScheduler, SymexConfig, Tally,
    Witness,
};
use tir::{Callee, CmdId, Command, FieldId, GlobalId, MethodId, Operand, Program, VarId};

/// One candidate null dereference and its refutation verdict.
#[derive(Clone, Debug)]
pub struct NullDeref {
    /// The dereference site (command + base local).
    pub site: DerefSite,
    /// The path-program witness, when the committing search produced one
    /// (`None` for aborted sites and warm cache hits).
    pub witness: Option<Witness>,
    /// True if the search gave up (budget/deadline) rather than finding a
    /// witness; the site is soundly reported, not proven.
    pub aborted: bool,
}

impl NullDeref {
    /// Human-readable rendering using program names.
    pub fn describe(&self, program: &Program) -> String {
        let tag = if self.aborted { "POSSIBLE (aborted)" } else { "NULL DEREF" };
        format!("{tag}: {}", self.site.describe(program))
    }
}

/// Result of a whole-program null-dereference check.
#[derive(Debug)]
pub struct NullReport {
    /// Surviving (witnessed or aborted) dereferences, in site order.
    pub alarms: Vec<NullDeref>,
    /// Candidate sites proposed by the sentinel tier.
    pub candidate_sites: usize,
    /// Candidates refuted — proven non-null on every path.
    pub refuted_sites: usize,
    /// Deref/edge keys refuted along the way (scheduler tally).
    pub edges_refuted: usize,
    /// Aborted searches (treated as alarms, soundly).
    pub edge_timeouts: usize,
    /// `edge_timeouts` broken down by reason.
    pub aborts: AbortCounts,
    /// Extra (degraded) refutation attempts beyond the strict first pass.
    pub retries: usize,
    /// Sites decided only by a coarsened retry.
    pub degraded_decisions: usize,
}

impl NullReport {
    /// True if every candidate dereference was refuted.
    pub fn is_null_safe(&self) -> bool {
        self.alarms.is_empty()
    }

    /// Number of surviving alarms.
    pub fn num_alarms(&self) -> usize {
        self.alarms.len()
    }

    /// Deterministic multi-line rendering (no timings, no ids — stable
    /// across `--jobs`, cache state, and points-to solver strategy).
    pub fn describe(&self, program: &Program) -> String {
        let mut out = format!(
            "null derefs: {} alarm(s), {} refuted, {} candidate(s)\n",
            self.num_alarms(),
            self.refuted_sites,
            self.candidate_sites
        );
        for a in &self.alarms {
            out.push_str("  ");
            out.push_str(&a.describe(program));
            out.push('\n');
        }
        out
    }

    /// Machine-readable rendering with the same stability contract as
    /// [`NullReport::describe`].
    pub fn to_value(&self, program: &Program) -> Value {
        let alarms = self
            .alarms
            .iter()
            .map(|a| {
                let mut fields = vec![
                    ("site".to_owned(), Value::str(a.site.describe(program))),
                    ("aborted".to_owned(), Value::Bool(a.aborted)),
                ];
                if let Some(w) = &a.witness {
                    let steps =
                        w.steps(program).into_iter().map(Value::Str).collect::<Vec<_>>();
                    fields.push(("witness".to_owned(), Value::Arr(steps)));
                }
                Value::Obj(fields)
            })
            .collect();
        Value::Obj(vec![
            ("alarms".to_owned(), Value::Arr(alarms)),
            ("candidate_sites".to_owned(), Value::uint(self.candidate_sites as u64)),
            ("refuted_sites".to_owned(), Value::uint(self.refuted_sites as u64)),
            ("edges_refuted".to_owned(), Value::uint(self.edges_refuted as u64)),
            ("edge_timeouts".to_owned(), Value::uint(self.edge_timeouts as u64)),
        ])
    }
}

/// Refutation-backed null-dereference analysis over one analyzed program.
pub struct NullClient<'a> {
    program: &'a Program,
    pta: &'a PtaResult,
    modref: &'a ModRef,
    config: SymexConfig,
    jobs: usize,
    store: Option<Arc<DecisionStore>>,
}

/// The sentinel lattice: which nodes may hold `null`.
#[derive(Default)]
struct Sentinel {
    vars: HashSet<VarId>,
    /// `(loc index, field)` cells written a may-null value.
    cells: HashSet<(usize, FieldId)>,
    globals: HashSet<GlobalId>,
    rets: HashSet<MethodId>,
}

impl<'a> NullClient<'a> {
    /// Creates a client over existing analysis results (sequential
    /// refutation; see [`NullClient::with_jobs`]).
    pub fn new(
        program: &'a Program,
        pta: &'a PtaResult,
        modref: &'a ModRef,
        config: SymexConfig,
    ) -> Self {
        NullClient { program, pta, modref, config, jobs: 1, store: None }
    }

    /// Sets the refutation-scheduler thread count (1 = sequential; the
    /// report is identical for every setting).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Attaches a persistent decision store: every check warm-starts from
    /// it and (in read-write mode) writes decisions through.
    pub fn with_store(mut self, store: Arc<DecisionStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Commands of every pta-reached method, in deterministic
    /// (method id, body) order.
    fn reached_cmds(&self) -> Vec<CmdId> {
        let mut out = Vec::new();
        for m in self.program.method_ids() {
            if self.pta.is_reached(m) {
                out.extend(self.program.method_cmds(m));
            }
        }
        out
    }

    /// The candidate dereference sites: every field/array access or
    /// virtual call whose base local carries the null sentinel.
    pub fn candidate_sites(&self) -> Vec<DerefSite> {
        let cmds = self.reached_cmds();
        let sentinel = self.sentinel(&cmds);
        let mut sites: Vec<DerefSite> = cmds
            .iter()
            .filter_map(|&cmd| {
                let base = match self.program.cmd(cmd) {
                    Command::ReadField { obj, .. } | Command::WriteField { obj, .. } => *obj,
                    Command::ReadArray { arr, .. }
                    | Command::WriteArray { arr, .. }
                    | Command::ArrayLen { arr, .. } => *arr,
                    Command::Call { callee: Callee::Virtual { receiver, .. }, .. } => *receiver,
                    _ => return None,
                };
                sentinel.vars.contains(&base).then_some(DerefSite { cmd, base })
            })
            .collect();
        sites.sort();
        sites
    }

    /// Runs the sentinel fixpoint over the reached commands.
    fn sentinel(&self, cmds: &[CmdId]) -> Sentinel {
        // Written cells/globals, for the null-at-birth/entry seeds: a cell
        // no write ever targets yields null on every read.
        let mut written_cells: HashSet<(usize, FieldId)> = HashSet::new();
        let mut written_globals: HashSet<GlobalId> = HashSet::new();
        for &cmd in cmds {
            match self.program.cmd(cmd) {
                Command::WriteField { obj, field, .. } => {
                    for l in self.pta.pt_var(*obj).iter() {
                        written_cells.insert((l, *field));
                    }
                }
                Command::WriteGlobal { global, .. } => {
                    written_globals.insert(*global);
                }
                _ => {}
            }
        }

        let mut s = Sentinel::default();
        let op_may_null = |s: &Sentinel, op: &Operand| match op {
            Operand::Null => true,
            Operand::Var(v) => s.vars.contains(v),
            Operand::Int(_) => false,
        };
        let cell_may_null = |s: &Sentinel, obj: VarId, field: FieldId| {
            field == self.program.contents_field
                || self.pta.pt_var(obj).iter().any(|l| {
                    !written_cells.contains(&(l, field)) || s.cells.contains(&(l, field))
                })
        };
        loop {
            let mut changed = false;
            let mark_var = |s: &mut Sentinel, v: VarId, changed: &mut bool| {
                *changed |= s.vars.insert(v);
            };
            for &cmd in cmds {
                match self.program.cmd(cmd) {
                    Command::Assign { dst, src } => {
                        if op_may_null(&s, src) {
                            mark_var(&mut s, *dst, &mut changed);
                        }
                    }
                    Command::ReadField { dst, obj, field } => {
                        if cell_may_null(&s, *obj, *field) {
                            mark_var(&mut s, *dst, &mut changed);
                        }
                    }
                    Command::ReadGlobal { dst, global } => {
                        if !written_globals.contains(global) || s.globals.contains(global) {
                            mark_var(&mut s, *dst, &mut changed);
                        }
                    }
                    // Array elements are null at birth, unconditionally.
                    Command::ReadArray { dst, .. } => mark_var(&mut s, *dst, &mut changed),
                    Command::WriteField { obj, field, src } => {
                        if op_may_null(&s, src) {
                            for l in self.pta.pt_var(*obj).iter() {
                                changed |= s.cells.insert((l, *field));
                            }
                        }
                    }
                    Command::WriteGlobal { global, src } => {
                        if op_may_null(&s, src) {
                            changed |= s.globals.insert(*global);
                        }
                    }
                    Command::Call { dst, callee, args } => {
                        let offset = usize::from(matches!(callee, Callee::Virtual { .. }));
                        for m in self.pta.call_targets(cmd) {
                            let params = &self.program.method(*m).params;
                            for (i, a) in args.iter().enumerate() {
                                if op_may_null(&s, a) {
                                    if let Some(&p) = params.get(i + offset) {
                                        mark_var(&mut s, p, &mut changed);
                                    }
                                }
                            }
                            if let (Some(d), true) = (dst, s.rets.contains(m)) {
                                mark_var(&mut s, *d, &mut changed);
                            }
                        }
                    }
                    Command::Return { val: Some(op) } => {
                        if op_may_null(&s, op) {
                            changed |= s.rets.insert(self.program.cmd_method(cmd));
                        }
                    }
                    _ => {}
                }
            }
            if !changed {
                return s;
            }
        }
    }

    /// Proposes candidates and decides each one through the refutation
    /// stack. The report is deterministic: identical for every `jobs`
    /// setting, cache state, and points-to solver strategy.
    pub fn run(&self) -> NullReport {
        let _span = obs::span(obs::SpanKind::Client, "null-client");
        let sites = self.candidate_sites();
        // Null-comparison guards are the idiomatic defense against the
        // exact flows this client traces; the must-not-null strong update
        // is forced on (it is sound, and off by default only to keep the
        // historical path behavior of the other clients).
        let config = self.config.clone().with_null_guards(true);
        let mut sched =
            RefutationScheduler::new(self.program, self.pta, self.modref, config, self.jobs);
        if let Some(store) = &self.store {
            sched.set_store(store.clone());
        }
        let mut tally = Tally::default();
        let answers = sched.run_derefs(&sites, &mut tally);
        let mut report = NullReport {
            alarms: Vec::new(),
            candidate_sites: sites.len(),
            refuted_sites: 0,
            edges_refuted: tally.edges_refuted as usize,
            edge_timeouts: tally.edge_timeouts as usize,
            aborts: tally.aborts.clone(),
            retries: tally.retries as usize,
            degraded_decisions: tally.degraded_decisions as usize,
        };
        for (site, answer) in answers {
            match answer {
                EdgeAnswer::Refuted => report.refuted_sites += 1,
                EdgeAnswer::Witnessed(w) => {
                    report.alarms.push(NullDeref { site, witness: w, aborted: false });
                }
                EdgeAnswer::Aborted(_) => {
                    report.alarms.push(NullDeref { site, witness: None, aborted: true });
                }
            }
        }
        report
    }
}

/// Internal helper for tests and the sentinel doc claims: maps var names
/// to may-null verdicts (used nowhere in production paths).
#[cfg(test)]
fn may_null_vars(client: &NullClient<'_>) -> std::collections::HashMap<String, bool> {
    let cmds = client.reached_cmds();
    let s = client.sentinel(&cmds);
    let mut out = std::collections::HashMap::new();
    for m in client.program.method_ids() {
        for &v in &client.program.method(m).locals {
            out.insert(client.program.var(v).name.clone(), s.vars.contains(&v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pta::ContextPolicy;

    fn setup(src: &str) -> (Program, PtaResult, ModRef) {
        let p = tir::parse(src).expect("parse");
        let r = pta::analyze(&p, ContextPolicy::Insensitive);
        let m = ModRef::compute(&p, &r);
        (p, r, m)
    }

    const SRC: &str = r#"
class Box { field item: Object; field spare: Object; }
fn main() {
  var b: Box;
  var c: Box;
  var o: Object;
  var p: Object;
  var q: Object;
  var flag: int;
  b = new Box @box0;
  c = new Box @box1;
  o = new Object @obj0;
  flag = 0;
  if (flag == 1) {
    o = null;
  }
  b.item = o;
  p = b.item;
  c.item = p;
  q = c.spare;
  c.item = q;
}
entry main;
"#;

    #[test]
    fn sentinel_marks_null_flows_and_unwritten_fields() {
        let (p, r, m) = setup(SRC);
        let client = NullClient::new(&p, &r, &m, SymexConfig::default());
        let nulls = may_null_vars(&client);
        assert!(nulls["o"], "explicit null assignment");
        assert!(nulls["p"], "read of a cell written a may-null value");
        assert!(nulls["q"], "read of a never-written field");
        assert!(!nulls["b"], "allocation result is non-null");
        assert!(!nulls["c"], "allocation result is non-null");
        assert!(!nulls["flag"], "integers never carry the sentinel");
    }

    #[test]
    fn report_separates_dead_null_from_live_null() {
        let (p, r, m) = setup(SRC);
        let report = NullClient::new(&p, &r, &m, SymexConfig::default()).run();
        // Candidates: none through b/c (non-null allocations); the sites
        // are exactly the derefs the sentinel can reach — here none,
        // because every base is a fresh allocation.
        assert_eq!(report.candidate_sites, 0);
        assert!(report.is_null_safe());
    }

    const DEREF_SRC: &str = r#"
class Box { field item: Object; }
fn main() {
  var b: Box;
  var t: Box;
  var o: Object;
  var flag: int;
  flag = 0;
  b = new Box @box0;
  o = new Object @obj0;
  t = null;
  if (flag == 1) {
    t = new Box @box1;
  }
  b.item = o;
  t.item = o;
}
entry main;
"#;

    #[test]
    fn null_flow_into_deref_is_not_refuted() {
        // `b.item = o` dereferences the fresh b (no candidate);
        // `t.item = o` dereferences the null-carrying t: witnessed on the
        // flag == 0 path, where the guarded re-allocation is skipped.
        let (p, r, m) = setup(DEREF_SRC);
        let report = NullClient::new(&p, &r, &m, SymexConfig::default()).run();
        assert_eq!(report.candidate_sites, 1, "{report:?}");
        assert_eq!(report.num_alarms(), 1, "{report:?}");
        assert!(!report.alarms[0].aborted);
        assert!(report.alarms[0].witness.is_some());
    }

    #[test]
    fn guarded_deref_is_refuted() {
        let src =
            DEREF_SRC.replace("t.item = o;", "if (t != null) {\n    t.item = o;\n  }");
        let (p, r, m) = setup(&src);
        let report = NullClient::new(&p, &r, &m, SymexConfig::default()).run();
        assert_eq!(report.candidate_sites, 1, "{report:?}");
        assert!(report.is_null_safe(), "{report:?}");
        assert_eq!(report.refuted_sites, 1);
    }

    #[test]
    fn jobs_and_store_do_not_change_the_report() {
        let (p, r, m) = setup(DEREF_SRC);
        let dir = std::env::temp_dir()
            .join(format!("thresher-null-client-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(
            DecisionStore::open(&dir, symex::CacheMode::ReadWrite, &p).expect("open store"),
        );
        let cold = NullClient::new(&p, &r, &m, SymexConfig::default())
            .with_store(store.clone())
            .run();
        let warm = NullClient::new(&p, &r, &m, SymexConfig::default())
            .with_jobs(4)
            .with_store(store)
            .run();
        assert_eq!(cold.describe(&p), warm.describe(&p));
        assert_eq!(cold.to_value(&p).to_json(), warm.to_value(&p).to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
