//! Fault injection for the daemon's robustness suite.
//!
//! A request may carry `"inject": "<fault>"` in its params; when the daemon
//! was started with fault injection enabled (`--inject`), the named fault
//! is forced *inside* that request's isolation boundary — the tests then
//! prove the daemon survives, only the targeted request fails (with a
//! structured, [`StopReason`](symex::StopReason)-tagged error), and
//! untouched requests keep answering byte-identically.
//!
//! Without `--inject` the parameter is rejected as a bad request, so a
//! production daemon cannot be made to hurt itself over the wire.

use std::io::Write;
use std::path::Path;
use std::str::FromStr;

/// A forcible mid-request failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the request handler (contained by `catch_unwind`).
    Panic,
    /// Busy-wait past the request's deadline (a runaway request).
    Stall,
    /// Append a syntactically corrupt line to the program's decision-store
    /// file mid-request (must be skipped, not trusted, on the next open).
    CorruptCache,
    /// Append a torn (truncated, unterminated) record to the decision-store
    /// file, as a crash mid-`write(2)` would (must self-heal on reopen).
    TornWrite,
}

impl Fault {
    /// The stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Fault::Panic => "panic",
            Fault::Stall => "stall",
            Fault::CorruptCache => "corrupt-cache",
            Fault::TornWrite => "torn-write",
        }
    }
}

impl FromStr for Fault {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "panic" => Ok(Fault::Panic),
            "stall" => Ok(Fault::Stall),
            "corrupt-cache" => Ok(Fault::CorruptCache),
            "torn-write" => Ok(Fault::TornWrite),
            other => Err(format!(
                "unknown fault {other:?} (want panic | stall | corrupt-cache | torn-write)"
            )),
        }
    }
}

/// Appends a syntactically invalid line to the decision store in `dir`.
pub fn corrupt_store(dir: &Path) -> std::io::Result<()> {
    append(dir, b"{\"corrupt\": this is not JSON\n")
}

/// Appends an unterminated record fragment to the decision store in `dir`,
/// simulating a write torn by a crash.
pub fn tear_store(dir: &Path) -> std::io::Result<()> {
    append(dir, b"{\"v\":1,\"fp\":\"12345\",\"edge\":\"torn")
}

fn append(dir: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let path = dir.join(symex::persist::CACHE_FILE);
    let mut f = std::fs::OpenOptions::new().append(true).open(path)?;
    f.write_all(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for f in [Fault::Panic, Fault::Stall, Fault::CorruptCache, Fault::TornWrite] {
            assert_eq!(f.as_str().parse::<Fault>(), Ok(f));
        }
        assert!("fire".parse::<Fault>().is_err());
    }
}
