//! Wire format of `thresher-serve`: newline-delimited JSON over stdio or
//! TCP, reusing [`obs::json`] so the daemon stays zero-dependency.
//!
//! One request per line:
//!
//! ```json
//! {"id": 1, "method": "analyze", "params": {"program": "app", "report": true}}
//! ```
//!
//! One response per line, correlated by the echoed `id` (requests may
//! complete out of order under multiple workers):
//!
//! ```json
//! {"id": 1, "ok": {...}}
//! {"id": 2, "err": {"code": "overloaded", "message": "...", "retry_after_ms": 100}}
//! ```
//!
//! Error objects carry a machine-readable `code`, and — when the failure
//! has engine provenance — a `stop_reason` holding a
//! [`StopReason`](symex::StopReason) key (`panic`, `wall-clock`, ...), so
//! a request that died inside the engine is distinguishable from one the
//! daemon itself rejected.

use obs::json::Value;

/// Machine-readable error classes, stable across releases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line was not valid JSON, or params were malformed.
    BadRequest,
    /// The named program is not resident (load it first, or it was
    /// evicted).
    NotLoaded,
    /// The pending queue is full; retry after `retry_after_ms`.
    Overloaded,
    /// The client's token bucket is empty; retry after `retry_after_ms`.
    RateLimited,
    /// The daemon is draining (shutdown/EOF/SIGTERM); no new work.
    Draining,
    /// The request's deadline expired (queued too long or ran too long).
    Deadline,
    /// The handler panicked; the panic was contained.
    Panic,
    /// Anything else (I/O failures inside a handler, ...).
    Internal,
}

impl ErrorCode {
    /// The stable kebab-case wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::NotLoaded => "not-loaded",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::RateLimited => "rate-limited",
            ErrorCode::Draining => "draining",
            ErrorCode::Deadline => "deadline",
            ErrorCode::Panic => "panic",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A structured request failure, rendered into the `err` response object.
#[derive(Clone, Debug)]
pub struct ServeError {
    /// Error class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// Engine provenance: a [`StopReason`](symex::StopReason) key when the
    /// failure came out of (or maps onto) the refutation engine's abort
    /// taxonomy.
    pub stop_reason: Option<&'static str>,
    /// Backoff hint for shed requests.
    pub retry_after_ms: Option<u64>,
    /// Recent queue-wait estimate (window p90) attached to shed
    /// responses, so clients can tell overload (large) from a transient
    /// rate-limit blip (small) without a round trip to `health`.
    pub queue_wait_ms: Option<u64>,
}

impl ServeError {
    /// A malformed request.
    pub fn bad_request(message: impl Into<String>) -> Self {
        ServeError {
            code: ErrorCode::BadRequest,
            message: message.into(),
            stop_reason: None,
            retry_after_ms: None,
            queue_wait_ms: None,
        }
    }

    /// A request naming a program that is not resident.
    pub fn not_loaded(name: &str) -> Self {
        ServeError {
            code: ErrorCode::NotLoaded,
            message: format!("program {name:?} is not resident (load_program first)"),
            stop_reason: None,
            retry_after_ms: None,
            queue_wait_ms: None,
        }
    }

    /// A shed request (full queue).
    pub fn overloaded(retry_after_ms: u64) -> Self {
        ServeError {
            code: ErrorCode::Overloaded,
            message: "pending queue full".to_owned(),
            stop_reason: None,
            retry_after_ms: Some(retry_after_ms),
            queue_wait_ms: None,
        }
    }

    /// A shed request (client over its token budget).
    pub fn rate_limited(retry_after_ms: u64) -> Self {
        ServeError {
            code: ErrorCode::RateLimited,
            message: "client request budget exhausted".to_owned(),
            stop_reason: None,
            retry_after_ms: Some(retry_after_ms),
            queue_wait_ms: None,
        }
    }

    /// A request rejected because the daemon is draining.
    pub fn draining() -> Self {
        ServeError {
            code: ErrorCode::Draining,
            message: "daemon is draining; no new requests".to_owned(),
            stop_reason: None,
            retry_after_ms: None,
            queue_wait_ms: None,
        }
    }

    /// A request whose deadline expired; tagged with the engine's
    /// wall-clock [`StopReason`](symex::StopReason) provenance.
    pub fn deadline(message: impl Into<String>) -> Self {
        ServeError {
            code: ErrorCode::Deadline,
            message: message.into(),
            stop_reason: Some(symex::StopReason::WallClock.key()),
            retry_after_ms: None,
            queue_wait_ms: None,
        }
    }

    /// A contained handler panic, with the panic payload as provenance.
    pub fn panic(payload: String) -> Self {
        ServeError {
            code: ErrorCode::Panic,
            stop_reason: Some(symex::StopReason::Panic(payload.clone()).key()),
            message: format!("request handler panicked: {payload}"),
            retry_after_ms: None,
            queue_wait_ms: None,
        }
    }

    /// Attaches a recent queue-wait estimate (for shed responses).
    pub fn with_queue_wait(mut self, ms: Option<u64>) -> Self {
        self.queue_wait_ms = ms;
        self
    }

    /// An internal failure.
    pub fn internal(message: impl Into<String>) -> Self {
        ServeError {
            code: ErrorCode::Internal,
            message: message.into(),
            stop_reason: None,
            retry_after_ms: None,
            queue_wait_ms: None,
        }
    }
}

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Correlation id, echoed verbatim into the response (Null if absent).
    pub id: Value,
    /// Method name.
    pub method: String,
    /// Method parameters (an object, or Null).
    pub params: Value,
    /// Token-bucket identity: the request's `client` field when present,
    /// otherwise the transport's identity (`"stdio"`, a peer address).
    pub client: String,
}

/// Parses one request line. `default_client` names the transport the line
/// arrived on.
pub fn parse_request(line: &str, default_client: &str) -> Result<Request, ServeError> {
    let v = obs::json::parse(line)
        .map_err(|e| ServeError::bad_request(format!("invalid JSON: {e:?}")))?;
    let method = v
        .get("method")
        .and_then(Value::as_str)
        .ok_or_else(|| ServeError::bad_request("missing \"method\""))?
        .to_owned();
    let id = v.get("id").cloned().unwrap_or(Value::Null);
    let params = v.get("params").cloned().unwrap_or(Value::Null);
    let client = v.get("client").and_then(Value::as_str).unwrap_or(default_client).to_owned();
    Ok(Request { id, method, params, client })
}

/// Decodes one `{op, ...}` object into a [`tir::EditOp`]. The JSON shape
/// mirrors the enum: `add_stmt`/`replace_stmt` need `method`, `at`,
/// `text`; `remove_stmt` needs `method`, `at`; `add_method` needs `text`
/// (plus `class` for instance methods); `remove_method` needs `method`.
/// Shared by the daemon's `edit` method and the CLI's `--edit-script`.
pub fn edit_op_from_value(v: &Value) -> Result<tir::EditOp, String> {
    let field = |key: &str| {
        v.get(key)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("edit op needs string field {key:?}"))
    };
    let at = || {
        v.get("at")
            .and_then(Value::as_u64)
            .map(|n| n as usize)
            .ok_or_else(|| "edit op needs integer field \"at\"".to_owned())
    };
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| "edit op needs field \"op\"".to_owned())?;
    match op {
        "add_stmt" => {
            Ok(tir::EditOp::AddStmt { method: field("method")?, at: at()?, text: field("text")? })
        }
        "replace_stmt" => Ok(tir::EditOp::ReplaceStmt {
            method: field("method")?,
            at: at()?,
            text: field("text")?,
        }),
        "remove_stmt" => Ok(tir::EditOp::RemoveStmt { method: field("method")?, at: at()? }),
        "add_method" => Ok(tir::EditOp::AddMethod {
            class: v.get("class").and_then(Value::as_str).map(str::to_owned),
            text: field("text")?,
        }),
        "remove_method" => Ok(tir::EditOp::RemoveMethod { method: field("method")? }),
        other => Err(format!(
            "unknown op {other:?} (add_stmt|replace_stmt|remove_stmt|add_method|remove_method)"
        )),
    }
}

/// Renders an `ok` response line (no trailing newline).
pub fn ok_response(id: &Value, body: Value) -> String {
    Value::Obj(vec![("id".to_owned(), id.clone()), ("ok".to_owned(), body)]).to_json()
}

/// Renders an `err` response line (no trailing newline).
pub fn err_response(id: &Value, e: &ServeError) -> String {
    let mut fields = vec![
        ("code".to_owned(), Value::str(e.code.as_str())),
        ("message".to_owned(), Value::str(e.message.clone())),
    ];
    if let Some(r) = e.stop_reason {
        fields.push(("stop_reason".to_owned(), Value::str(r)));
    }
    if let Some(ms) = e.retry_after_ms {
        fields.push(("retry_after_ms".to_owned(), Value::uint(ms)));
    }
    if let Some(ms) = e.queue_wait_ms {
        fields.push(("queue_wait_ms".to_owned(), Value::uint(ms)));
    }
    Value::Obj(vec![("id".to_owned(), id.clone()), ("err".to_owned(), Value::Obj(fields))])
        .to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let r = parse_request(
            r#"{"id": 7, "method": "health", "params": {"x": 1}, "client": "a"}"#,
            "stdio",
        )
        .unwrap();
        assert_eq!(r.method, "health");
        assert_eq!(r.client, "a");
        assert_eq!(r.params.get("x").and_then(Value::as_u64), Some(1));
        assert_eq!(ok_response(&r.id, Value::Obj(vec![])), r#"{"id":7,"ok":{}}"#);
    }

    #[test]
    fn defaults_and_errors() {
        let r = parse_request(r#"{"method": "health"}"#, "tcp:1.2.3.4").unwrap();
        assert!(matches!(r.id, Value::Null));
        assert_eq!(r.client, "tcp:1.2.3.4");

        let e = parse_request("not json", "stdio").unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        let e = parse_request(r#"{"id": 1}"#, "stdio").unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
    }

    #[test]
    fn error_rendering_carries_provenance() {
        let line = err_response(&Value::uint(3), &ServeError::panic("boom".to_owned()));
        let v = obs::json::parse(&line).unwrap();
        let err = v.get("err").unwrap();
        assert_eq!(err.get("code").and_then(Value::as_str), Some("panic"));
        assert_eq!(err.get("stop_reason").and_then(Value::as_str), Some("panic"));

        let line = err_response(&Value::Null, &ServeError::overloaded(100));
        let v = obs::json::parse(&line).unwrap();
        let err = v.get("err").unwrap();
        assert_eq!(err.get("retry_after_ms").and_then(Value::as_u64), Some(100));
        assert!(err.get("queue_wait_ms").is_none());

        let shed = ServeError::overloaded(100).with_queue_wait(Some(250));
        let line = err_response(&Value::Null, &shed);
        let v = obs::json::parse(&line).unwrap();
        let err = v.get("err").unwrap();
        assert_eq!(err.get("queue_wait_ms").and_then(Value::as_u64), Some(250));
    }
}
