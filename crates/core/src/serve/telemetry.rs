//! The daemon's live telemetry plane: per-request cost attribution,
//! windowed latency aggregation, Prometheus exposition state, and the
//! slow-request forensics log.
//!
//! Three invariants tie this module to the rest of the daemon:
//!
//! 1. **Cost blocks are delta-derived.** Every count in a response's
//!    `cost` object comes from the request's [`MetricsDelta`] — the same
//!    buffered capture that feeds per-request reports — so the counts are
//!    jobs-invariant (PR 3's guarantee) and sum exactly to the daemon's
//!    global counters. Only the wall-clock fields (`wall_us`, the phase
//!    splits, `queue_wait_ms`) vary run to run, which is why the whole
//!    block is excluded from `--diff-reports` answer identity.
//! 2. **The telemetry registry shadows the global recorder.** The daemon
//!    binary only installs a global recorder with `--report-out`, so the
//!    `metrics` method renders from [`Telemetry::registry`], which
//!    receives every successful request's delta (via `replay_into`) and
//!    every daemon-level tally ([`super::Shared`] mirrors each `obs::add`
//!    here). When both sinks are live their counter totals agree, modulo
//!    the in-flight scrape itself (`requests_completed` lags by exactly
//!    the requests still executing when the exposition is rendered).
//! 3. **Slow-log entries are bounded.** The JSONL slow log self-truncates:
//!    when an append pushes the file past its byte cap, the oldest lines
//!    are dropped until the newest ones fit in half the cap (so appends
//!    between truncations stay cheap).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use obs::json::Value;
use obs::{Counter, Hist, MetricsDelta, Registry, SlidingWindow};

/// Live aggregation state shared by every worker and transport thread.
pub(super) struct Telemetry {
    /// Daemon-lifetime counters/histograms, independent of the global
    /// recorder (see module docs).
    pub(super) registry: Registry,
    /// Per-method latency rings (request wall time, microseconds).
    pub(super) latency: Mutex<BTreeMap<String, SlidingWindow>>,
    /// Queue-wait ring (admission → dequeue, microseconds), all methods.
    pub(super) queue_wait: Mutex<SlidingWindow>,
    /// Queue-depth ring, sampled at each admission.
    pub(super) queue_depth: Mutex<SlidingWindow>,
    /// High-water mark of concurrently executing requests.
    pub(super) peak_active: AtomicU64,
    /// Ring capacity for new per-method windows.
    window: usize,
    /// Slow-request log, when configured.
    pub(super) slow: Option<SlowLog>,
}

impl Telemetry {
    pub(super) fn new(window: usize, slow: Option<SlowLog>) -> Self {
        Telemetry {
            registry: Registry::new(),
            latency: Mutex::new(BTreeMap::new()),
            queue_wait: Mutex::new(SlidingWindow::new(window)),
            queue_depth: Mutex::new(SlidingWindow::new(window)),
            peak_active: AtomicU64::new(0),
            window,
            slow,
        }
    }

    /// Records one executed request's wall time into its method's ring.
    pub(super) fn record_latency(&self, method: &str, wall_us: u64) {
        let mut windows = self.latency.lock().unwrap();
        windows
            .entry(method.to_owned())
            .or_insert_with(|| SlidingWindow::new(self.window))
            .push(wall_us);
    }

    /// Records one dequeued request's queue wait.
    pub(super) fn record_queue_wait(&self, wait_us: u64) {
        self.queue_wait.lock().unwrap().push(wait_us);
    }

    /// Records the queue depth seen at one admission.
    pub(super) fn record_queue_depth(&self, depth: u64) {
        self.queue_depth.lock().unwrap().push(depth);
    }

    /// Raises the in-flight high-water mark to at least `active`.
    pub(super) fn note_active(&self, active: u64) {
        self.peak_active.fetch_max(active, Ordering::Relaxed);
    }

    /// A recent queue-wait estimate (window p90, milliseconds) for shed
    /// responses: lets a client distinguish "the daemon is backed up"
    /// from "my request would be slow".
    pub(super) fn queue_wait_hint_ms(&self) -> Option<u64> {
        self.queue_wait.lock().unwrap().quantile(0.9).map(|us| us / 1000)
    }

    /// Appends the per-method and queue window quantiles to an exposition
    /// document as labeled gauge families.
    pub(super) fn windows_into(&self, p: &mut obs::prom::PromText) {
        const QS: [(f64, &str); 3] = [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")];
        p.family(
            "thresher_serve_window_request_us",
            "request wall time quantiles over the recent window, by method",
            "gauge",
        );
        for (method, w) in self.latency.lock().unwrap().iter() {
            for (q, label) in QS {
                if let Some(v) = w.quantile(q) {
                    p.sample(
                        "thresher_serve_window_request_us",
                        &[("method", method), ("quantile", label)],
                        v as f64,
                    );
                }
            }
        }
        p.family(
            "thresher_serve_window_queue_wait_us",
            "queue wait quantiles over the recent window",
            "gauge",
        );
        for (q, label) in QS {
            if let Some(v) = self.queue_wait.lock().unwrap().quantile(q) {
                p.sample("thresher_serve_window_queue_wait_us", &[("quantile", label)], v as f64);
            }
        }
        p.family(
            "thresher_serve_window_queue_depth",
            "queue depth quantiles over recent admissions",
            "gauge",
        );
        for (q, label) in QS {
            if let Some(v) = self.queue_depth.lock().unwrap().quantile(q) {
                p.sample("thresher_serve_window_queue_depth", &[("quantile", label)], v as f64);
            }
        }
    }
}

/// Wall-clock phase attribution for one request, built by the handler as
/// it runs. Doubles as the request's span list in slow-log entries: each
/// entry is `(phase name, start offset µs, duration µs)` relative to the
/// moment the worker picked the request up.
pub(super) struct Phases {
    t0: Instant,
    entries: Vec<(&'static str, u64, u64)>,
    budget: Option<u64>,
}

impl Phases {
    pub(super) fn start() -> Self {
        Phases { t0: Instant::now(), entries: Vec::new(), budget: None }
    }

    /// Times `f` as one `name` phase.
    pub(super) fn time<R>(&mut self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let start = self.elapsed_us();
        let r = f();
        let dur = self.elapsed_us().saturating_sub(start);
        self.entries.push((name, start, dur));
        r
    }

    /// Records the fair path-program budget the handler actually ran with.
    pub(super) fn note_budget(&mut self, budget: u64) {
        self.budget = Some(budget);
    }

    /// Microseconds since the worker picked the request up.
    pub(super) fn elapsed_us(&self) -> u64 {
        u64::try_from(self.t0.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Total microseconds attributed to phase `name`.
    fn total(&self, name: &str) -> u64 {
        self.entries.iter().filter(|(n, _, _)| *n == name).map(|(_, _, d)| d).sum()
    }

    /// The span list for slow-log entries.
    pub(super) fn spans_value(&self) -> Value {
        Value::Arr(
            self.entries
                .iter()
                .map(|(name, start, dur)| {
                    Value::Obj(vec![
                        ("name".to_owned(), Value::str(*name)),
                        ("start_us".to_owned(), Value::uint(*start)),
                        ("dur_us".to_owned(), Value::uint(*dur)),
                    ])
                })
                .collect(),
        )
    }
}

/// Builds the `cost` block attached to every queued-method `ok` response.
/// Counts come from `delta` (jobs-invariant); times from `phases` and the
/// caller's clocks. Excluded from answer identity — strip `cost` before
/// comparing responses byte-for-byte.
pub(super) fn cost_value(
    delta: &MetricsDelta,
    phases: &Phases,
    wall_us: u64,
    queue_wait_us: u64,
) -> Value {
    let solver_ns: u64 =
        delta.observations().iter().filter(|(h, _)| *h == Hist::SolverNanos).map(|(_, v)| v).sum();
    let phase_obj = Value::Obj(
        ["parse", "pta", "edit", "symex", "cache"]
            .iter()
            .map(|&n| (format!("{n}_us"), Value::uint(phases.total(n))))
            .collect(),
    );
    Value::Obj(vec![
        ("wall_us".to_owned(), Value::uint(wall_us)),
        ("queue_wait_ms".to_owned(), Value::uint(queue_wait_us / 1000)),
        ("phases".to_owned(), phase_obj),
        ("path_programs".to_owned(), Value::uint(delta.counter(Counter::PathPrograms))),
        ("budget".to_owned(), phases.budget.map_or(Value::Null, Value::uint)),
        ("solver_calls".to_owned(), Value::uint(delta.counter(Counter::SolverCalls))),
        ("solver_ns".to_owned(), Value::uint(solver_ns)),
        ("cache_hits".to_owned(), Value::uint(delta.counter(Counter::CacheHits))),
        ("cache_misses".to_owned(), Value::uint(delta.counter(Counter::CacheMisses))),
        ("cache_invalidated".to_owned(), Value::uint(delta.counter(Counter::CacheInvalidated))),
        ("edges_refuted".to_owned(), Value::uint(delta.counter(Counter::EdgesRefuted))),
        ("edges_witnessed".to_owned(), Value::uint(delta.counter(Counter::EdgesWitnessed))),
        ("edges_aborted".to_owned(), Value::uint(delta.counter(Counter::EdgesAborted))),
    ])
}

/// A bounded, self-truncating JSONL log of slow requests.
pub(super) struct SlowLog {
    path: PathBuf,
    bytes_cap: u64,
    // Serializes append/truncate/read; file I/O is cheap at slow-request
    // rates.
    lock: Mutex<()>,
}

impl SlowLog {
    pub(super) fn new(path: PathBuf, bytes_cap: u64) -> Self {
        SlowLog { path, bytes_cap: bytes_cap.max(1024), lock: Mutex::new(()) }
    }

    pub(super) fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Appends one entry; on overflow, rewrites the file keeping the
    /// newest entries that fit in half the cap. I/O errors are swallowed —
    /// forensics must never fail a request.
    pub(super) fn append(&self, entry: &Value) {
        let _g = self.lock.lock().unwrap();
        let line = entry.to_json();
        let _ = std::fs::OpenOptions::new().create(true).append(true).open(&self.path).and_then(
            |mut f| {
                use std::io::Write;
                writeln!(f, "{line}")
            },
        );
        let len = std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0);
        if len > self.bytes_cap {
            self.truncate_locked();
        }
    }

    fn truncate_locked(&self) {
        let Ok(text) = std::fs::read_to_string(&self.path) else { return };
        let keep_budget = self.bytes_cap / 2;
        let mut kept: Vec<&str> = Vec::new();
        let mut bytes = 0u64;
        for line in text.lines().rev() {
            let cost = line.len() as u64 + 1;
            if bytes + cost > keep_budget && !kept.is_empty() {
                break;
            }
            kept.push(line);
            bytes += cost;
        }
        kept.reverse();
        let mut out = kept.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        let _ = std::fs::write(&self.path, out);
    }

    /// The newest `limit` entries (oldest first), skipping unparsable
    /// lines (a torn tail after a crash must not fail the read).
    pub(super) fn read(&self, limit: usize) -> Vec<Value> {
        let _g = self.lock.lock().unwrap();
        let Ok(text) = std::fs::read_to_string(&self.path) else { return Vec::new() };
        let mut entries: Vec<Value> =
            text.lines().filter_map(|l| obs::json::parse(l).ok()).collect();
        if entries.len() > limit {
            entries.drain(..entries.len() - limit);
        }
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_attribute_and_render() {
        let mut p = Phases::start();
        let v = p.time("pta", || 41 + 1);
        assert_eq!(v, 42);
        p.time("symex", || std::thread::sleep(std::time::Duration::from_millis(2)));
        p.note_budget(500);
        assert!(p.total("symex") >= 2000);
        assert_eq!(p.total("parse"), 0);
        let spans = p.spans_value();
        let arr = spans.as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("name").and_then(Value::as_str), Some("pta"));
        assert!(arr[1].get("dur_us").and_then(Value::as_u64).unwrap() >= 2000);
    }

    #[test]
    fn cost_block_pulls_counts_from_delta() {
        let _serial = obs::test_lock();
        let rec = obs::MemRecorder::install_static(obs::RingCapacity::default());
        rec.reset();
        let ((), delta) = obs::capture(|| {
            obs::add(Counter::PathPrograms, 7);
            obs::add(Counter::SolverCalls, 3);
            obs::add(Counter::CacheHits, 2);
            obs::observe(Hist::SolverNanos, 1000);
            obs::observe(Hist::SolverNanos, 500);
        });
        obs::uninstall();
        let mut phases = Phases::start();
        phases.note_budget(1234);
        let cost = cost_value(&delta, &phases, 9000, 2500);
        assert_eq!(cost.get("wall_us").and_then(Value::as_u64), Some(9000));
        assert_eq!(cost.get("queue_wait_ms").and_then(Value::as_u64), Some(2));
        assert_eq!(cost.get("path_programs").and_then(Value::as_u64), Some(7));
        assert_eq!(cost.get("budget").and_then(Value::as_u64), Some(1234));
        assert_eq!(cost.get("solver_calls").and_then(Value::as_u64), Some(3));
        assert_eq!(cost.get("solver_ns").and_then(Value::as_u64), Some(1500));
        assert_eq!(cost.get("cache_hits").and_then(Value::as_u64), Some(2));
        let phases_v = cost.get("phases").unwrap();
        assert_eq!(phases_v.get("parse_us").and_then(Value::as_u64), Some(0));
    }

    #[test]
    fn slow_log_appends_reads_and_truncates() {
        let dir = std::env::temp_dir().join(format!("thresher-slowlog-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("slow.jsonl");
        let _ = std::fs::remove_file(&path);
        let log = SlowLog::new(path.clone(), 2048);
        for i in 0..100u64 {
            let entry = Value::Obj(vec![
                ("seq".to_owned(), Value::uint(i)),
                ("pad".to_owned(), Value::str("x".repeat(64))),
            ]);
            log.append(&entry);
            // The file never stays over cap after an append returns.
            let len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            assert!(len <= 2048, "slow log {len} bytes exceeds cap after append {i}");
        }
        let entries = log.read(10);
        assert_eq!(entries.len(), 10);
        // Newest entries survive truncation, oldest-first within the read.
        let seqs: Vec<u64> =
            entries.iter().map(|e| e.get("seq").and_then(Value::as_u64).unwrap()).collect();
        assert_eq!(seqs, (90..100).collect::<Vec<u64>>());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn telemetry_windows_and_hints() {
        let t = Telemetry::new(16, None);
        assert_eq!(t.queue_wait_hint_ms(), None);
        for _ in 0..10 {
            t.record_queue_wait(30_000);
        }
        assert_eq!(t.queue_wait_hint_ms(), Some(30));
        t.record_latency("analyze", 100);
        t.record_latency("analyze", 200);
        t.record_queue_depth(3);
        t.note_active(2);
        t.note_active(1);
        assert_eq!(t.peak_active.load(Ordering::Relaxed), 2);
        let mut p = obs::prom::PromText::new();
        t.windows_into(&mut p);
        let samples = obs::prom::parse(&p.finish()).unwrap();
        let s = samples
            .iter()
            .find(|s| {
                s.name == "thresher_serve_window_request_us" && s.label("quantile") == Some("0.5")
            })
            .expect("latency window sample");
        assert_eq!(s.label("method"), Some("analyze"));
        assert_eq!(s.value, 100.0);
    }
}
