//! `thresher-serve`: a fault-isolated resident analysis daemon.
//!
//! The one-shot CLI pays the whole pipeline — parse, points-to, mod/ref —
//! on every invocation. The daemon keeps those results *resident* and
//! answers a stream of requests over newline-delimited JSON (stdin/stdout,
//! and optionally a TCP listener), with three robustness guarantees the
//! CLI never needed:
//!
//! 1. **Fault isolation.** Every request runs under [`obs::capture`] +
//!    `catch_unwind` with its own deadline and a fair share of a global
//!    path-program budget. A panicking or runaway request produces a
//!    structured error (tagged with [`StopReason`](symex::StopReason)
//!    provenance) while the daemon keeps serving, and its metrics delta is
//!    never committed half-applied to the global recorder.
//! 2. **Admission control.** A bounded pending queue sheds load with a
//!    `retry_after_ms` hint instead of queueing unboundedly; per-client
//!    token buckets stop one chatty client from starving the rest; a
//!    drain signal (shutdown request, stdin EOF, or SIGTERM via
//!    [`request_drain`]) finishes in-flight work and then exits cleanly.
//! 3. **Bounded residency.** At most [`ServeConfig::max_resident`]
//!    programs stay loaded (least-recently-used eviction, counted in
//!    `programs_evicted`), and each program's persistent
//!    [`DecisionStore`] carries a byte cap that triggers generation-based
//!    compaction (see `symex::persist`).
//!
//! Request metrics are buffered per request and replayed into the global
//! recorder only after the request completes, so a per-request
//! [`RunReport`](obs::RunReport) (params `"report": true`) is
//! byte-comparable — modulo timing — with a one-shot `thresher-cli` run of
//! the same work (`--diff-reports`).
//!
//! See [`protocol`] for the wire format and [`faults`] for the injection
//! hooks behind `--inject`.

pub mod faults;
pub mod protocol;

mod telemetry;

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, Write};
use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use obs::json::Value;
use obs::{Counter, Hist, MetricsDelta, Registry, RunReport};
use pta::{
    BitSet, ContextPolicy, DemandPta, DemandQueryStats, HeapGraphView, IncrementalPta, ModRef,
    PartialPtaResult, PtaOptions, PtaResult, PtaView,
};
use symex::{
    CacheMode, DecisionStore, Fingerprinter, JobVerdict, MethodHashCache, ReachJob,
    RefutationScheduler, StoreLimits, SymexConfig,
};
use tir::{EditOp, Program};

use faults::Fault;
use protocol::{err_response, ok_response, parse_request, ErrorCode, Request, ServeError};
use telemetry::{cost_value, Phases, SlowLog, Telemetry};

/// Process-global drain flag, set by [`request_drain`] (safe to call from a
/// signal handler: it is a single relaxed atomic store).
static DRAIN: AtomicBool = AtomicBool::new(false);

/// Asks every running daemon in this process to drain and exit: in-flight
/// and already-queued requests finish, new ones are rejected. This is the
/// SIGTERM hook — it only touches one atomic, so it is async-signal-safe.
pub fn request_drain() {
    DRAIN.store(true, Ordering::Relaxed);
}

/// True once [`request_drain`] has been called.
pub fn drain_requested() -> bool {
    DRAIN.load(Ordering::Relaxed)
}

/// Daemon tuning knobs. The defaults suit an interactive local daemon.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Request-handler threads.
    pub workers: usize,
    /// Refutation-scheduler threads *per request* (1 = sequential; every
    /// reported number is identical for every setting).
    pub jobs: usize,
    /// Pending-queue bound; requests beyond it are shed with
    /// `retry_after_ms`.
    pub queue_cap: usize,
    /// Resident-program bound (least-recently-used eviction beyond it).
    pub max_resident: usize,
    /// Default per-request deadline (params `deadline_ms` overrides).
    pub request_deadline: Duration,
    /// Global path-program budget divided fairly among concurrently
    /// executing requests. The default (`10_000 ×` workers) gives a solo
    /// request exactly the one-shot CLI's default budget.
    pub global_budget: u64,
    /// Token-bucket refill rate per client, requests/second.
    pub rate_per_sec: f64,
    /// Token-bucket burst capacity per client.
    pub burst: f64,
    /// Root directory for per-program persistent decision stores; `None`
    /// disables caching.
    pub cache_root: Option<PathBuf>,
    /// Per-program decision-store byte cap (compaction threshold).
    pub cache_bytes_cap: u64,
    /// Honor the `"inject"` request parameter (see [`faults`]).
    pub inject: bool,
    /// Sliding-window capacity for the per-method latency and queue
    /// rings behind the `metrics` method.
    pub window: usize,
    /// Slow-request JSONL log path; `None` disables slow-request
    /// forensics.
    pub slow_log: Option<PathBuf>,
    /// Requests whose wall time reaches this threshold are appended to
    /// the slow log (when one is configured).
    pub slow_threshold: Duration,
    /// Slow-log byte cap; past it the oldest entries are dropped.
    pub slow_log_bytes_cap: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = 2;
        ServeConfig {
            workers,
            jobs: 1,
            queue_cap: 64,
            max_resident: 8,
            request_deadline: Duration::from_secs(60),
            global_budget: 10_000 * workers as u64,
            rate_per_sec: 100.0,
            burst: 200.0,
            cache_root: None,
            cache_bytes_cap: 4 * 1024 * 1024,
            inject: false,
            window: 512,
            slow_log: None,
            slow_threshold: Duration::from_secs(1),
            slow_log_bytes_cap: 1024 * 1024,
        }
    }
}

/// End-of-run accounting, also mirrored into [`obs`] counters
/// (`requests_admitted`, `requests_completed`, `requests_shed`,
/// `requests_panicked`, `requests_timed_out`, `programs_evicted`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunSummary {
    /// Requests accepted into the pending queue.
    pub admitted: u64,
    /// Requests that produced an `ok` response.
    pub completed: u64,
    /// Requests shed at admission (queue full, rate-limited, draining).
    pub shed: u64,
    /// Requests whose handler panicked (contained).
    pub panicked: u64,
    /// Requests whose deadline expired (in queue or while running).
    pub timed_out: u64,
    /// Programs evicted by residency pressure.
    pub evicted: u64,
}

/// One resident program: parsed TIR plus the points-to and mod/ref results
/// every request reuses, the per-program decision store, and the metrics
/// delta of the load itself (replayed into per-request reports so they
/// match a one-shot run that did its own loading).
struct Resident {
    program: Program,
    pta: Arc<PtaResult>,
    modref: ModRef,
    /// Lazily-built demand query tier: per-query slices of the points-to
    /// graph, each answer gated fact-by-fact against the resident
    /// exhaustive result (`pta`, the differential oracle). Built on the
    /// first `query_edge` with `"demand": true`; carried across edits with
    /// its slice cache invalidated by changed-method set.
    demand: Mutex<Option<DemandPta>>,
    store: Option<Arc<DecisionStore>>,
    store_dir: Option<PathBuf>,
    /// Resident delta solver for the `edit` method, built lazily on the
    /// first edit (one extra full solve) and carried across edits so each
    /// subsequent batch costs only its delta.
    incr: Mutex<Option<IncrementalPta>>,
    /// Cross-edit per-method fingerprint hashes: refreshed with the
    /// changed-method set at each edit, so attaching the decision store to
    /// a later request re-hashes nothing.
    hashes: Mutex<MethodHashCache>,
    load_obs: Mutex<MetricsDelta>,
    last_used: AtomicU64,
}

struct Residency {
    map: HashMap<String, Arc<Resident>>,
    tick: u64,
}

struct Bucket {
    tokens: f64,
    refilled: Instant,
}

type Out = Arc<Mutex<Box<dyn Write + Send>>>;

struct Job {
    req: Request,
    deadline: Instant,
    queued_at: Instant,
    out: Out,
}

#[derive(Default)]
struct Counts {
    admitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    panicked: AtomicU64,
    timed_out: AtomicU64,
    evicted: AtomicU64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Flow {
    Continue,
    Shutdown,
}

struct Shared {
    config: ServeConfig,
    queue: Mutex<VecDeque<Job>>,
    cond: Condvar,
    residency: Mutex<Residency>,
    buckets: Mutex<HashMap<String, Bucket>>,
    draining: AtomicBool,
    active: AtomicUsize,
    started: Instant,
    counts: Counts,
    telemetry: Telemetry,
}

/// The resident analysis daemon. Construct with [`Daemon::new`], then call
/// [`Daemon::run`] with the primary transport (stdin/stdout in the
/// `thresher-serve` binary; in-memory buffers in tests), optionally after
/// [`Daemon::start_listener`] for TCP clients.
pub struct Daemon {
    shared: Arc<Shared>,
    listener: Mutex<Option<JoinHandle<()>>>,
    metrics_listener: Mutex<Option<JoinHandle<()>>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Daemon {
    /// A daemon with the given configuration (not yet serving).
    pub fn new(config: ServeConfig) -> Self {
        let slow =
            config.slow_log.clone().map(|path| SlowLog::new(path, config.slow_log_bytes_cap));
        let telemetry = Telemetry::new(config.window, slow);
        Daemon {
            shared: Arc::new(Shared {
                config,
                queue: Mutex::new(VecDeque::new()),
                cond: Condvar::new(),
                residency: Mutex::new(Residency { map: HashMap::new(), tick: 0 }),
                buckets: Mutex::new(HashMap::new()),
                draining: AtomicBool::new(false),
                active: AtomicUsize::new(0),
                started: Instant::now(),
                counts: Counts::default(),
                telemetry,
            }),
            listener: Mutex::new(None),
            metrics_listener: Mutex::new(None),
            conns: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Serves requests from `input` until EOF, a `shutdown` request, or
    /// [`request_drain`]; then drains — queued and in-flight requests
    /// finish, workers exit — and returns the run's accounting.
    pub fn run<R: BufRead, W: Write + Send + 'static>(
        &self,
        mut input: R,
        output: W,
    ) -> RunSummary {
        let out: Out = Arc::new(Mutex::new(Box::new(output)));
        let workers: Vec<JoinHandle<()>> = (0..self.shared.config.workers.max(1))
            .map(|_| {
                let shared = self.shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        let mut buf = String::new();
        loop {
            if self.shared.is_draining() {
                break;
            }
            buf.clear();
            match input.read_line(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(_) => {
                    let line = buf.trim();
                    if line.is_empty() {
                        continue;
                    }
                    if self.shared.handle_line(line, "stdio", &out) == Flow::Shutdown {
                        break;
                    }
                }
            }
        }

        self.shared.begin_drain();
        for h in workers {
            let _ = h.join();
        }
        if let Some(h) = self.listener.lock().unwrap().take() {
            let _ = h.join();
        }
        if let Some(h) = self.metrics_listener.lock().unwrap().take() {
            let _ = h.join();
        }
        for h in self.conns.lock().unwrap().drain(..) {
            let _ = h.join();
        }
        if let Ok(mut o) = out.lock() {
            let _ = o.flush();
        }
        self.shared.summary()
    }

    /// Runs a newline-delimited request script through an in-memory
    /// transport and returns the response lines (test/bench convenience).
    pub fn run_script(&self, script: &str) -> (Vec<String>, RunSummary) {
        #[derive(Clone, Default)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = SharedBuf::default();
        let summary = self.run(std::io::Cursor::new(script.to_owned()), buf.clone());
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).expect("utf-8 responses");
        (text.lines().map(str::to_owned).collect(), summary)
    }

    /// Number of currently resident programs (always at most
    /// [`ServeConfig::max_resident`]).
    pub fn resident_count(&self) -> usize {
        self.shared.residency.lock().unwrap().map.len()
    }

    /// Additionally accepts TCP clients on `listener` (one thread per
    /// connection, each line handled exactly like a stdin line; the
    /// client's token-bucket identity defaults to its peer address). The
    /// accept loop and every connection wind down when the daemon drains.
    pub fn start_listener(&self, listener: TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        let shared = self.shared.clone();
        let conns = self.conns.clone();
        let handle = std::thread::spawn(move || loop {
            if shared.is_draining() {
                break;
            }
            match listener.accept() {
                Ok((stream, peer)) => {
                    let Ok(write_half) = stream.try_clone() else { continue };
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
                    let out: Out = Arc::new(Mutex::new(Box::new(write_half)));
                    let shared = shared.clone();
                    let h = std::thread::spawn(move || {
                        conn_loop(&shared, stream, &format!("tcp:{peer}"), &out);
                    });
                    conns.lock().unwrap().push(h);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(_) => break,
            }
        });
        self.listener.lock().unwrap().replace(handle);
        Ok(())
    }

    /// Additionally serves the Prometheus text exposition over HTTP on
    /// `listener` (the `--metrics-addr` flag). Each connection gets one
    /// minimal HTTP/1.0 response with the current exposition and is then
    /// closed — enough for `curl` and any Prometheus scraper, with zero
    /// dependencies. Winds down when the daemon drains.
    pub fn start_metrics_listener(&self, listener: TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        let shared = self.shared.clone();
        let handle = std::thread::spawn(move || loop {
            if shared.is_draining() {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => serve_metrics_conn(&shared, stream),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(_) => break,
            }
        });
        self.metrics_listener.lock().unwrap().replace(handle);
        Ok(())
    }

    /// The current Prometheus exposition (what the `metrics` method and
    /// the `--metrics-addr` endpoint serve), for embedding callers.
    pub fn exposition(&self) -> String {
        self.shared.exposition()
    }
}

/// One metrics-endpoint connection: swallow the request head, answer with
/// the exposition, close.
fn serve_metrics_conn(shared: &Arc<Shared>, stream: std::net::TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    {
        let mut reader = std::io::BufReader::new(&stream);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) if line.trim().is_empty() => break,
                Ok(_) => {}
                Err(_) => break,
            }
        }
    }
    let body = shared.exposition();
    let mut stream = stream;
    let _ = write!(
        stream,
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let _ = stream.flush();
}

/// One TCP connection: lines in, responses out, until EOF or drain. Reads
/// run under a 100ms timeout so drain is noticed promptly.
fn conn_loop(shared: &Arc<Shared>, stream: std::net::TcpStream, client: &str, out: &Out) {
    let mut reader = std::io::BufReader::new(stream);
    let mut buf = String::new();
    loop {
        if shared.is_draining() {
            break;
        }
        match reader.read_line(&mut buf) {
            Ok(0) => break,
            Ok(_) if buf.ends_with('\n') => {
                let line = buf.trim().to_owned();
                buf.clear();
                if line.is_empty() {
                    continue;
                }
                if shared.handle_line(&line, client, out) == Flow::Shutdown {
                    break;
                }
            }
            // Timeout with a partial line buffered: keep accumulating.
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
}

impl Shared {
    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed) || drain_requested()
    }

    /// Bumps a daemon-level counter on BOTH sinks: the global recorder
    /// (daemon-lifetime `--report-out` report) and the internal telemetry
    /// registry (the `metrics` exposition). Keeping every daemon-level
    /// emission behind this helper is what makes the two totals provably
    /// equal.
    fn tally(&self, c: Counter, n: u64) {
        obs::add(c, n);
        self.telemetry.registry.add(c, n);
    }

    /// Histogram twin of [`Self::tally`].
    fn sample(&self, h: Hist, v: u64) {
        obs::observe(h, v);
        self.telemetry.registry.observe(h, v);
    }

    fn begin_drain(&self) {
        self.draining.store(true, Ordering::Relaxed);
        self.cond.notify_all();
    }

    fn summary(&self) -> RunSummary {
        RunSummary {
            admitted: self.counts.admitted.load(Ordering::Relaxed),
            completed: self.counts.completed.load(Ordering::Relaxed),
            shed: self.counts.shed.load(Ordering::Relaxed),
            panicked: self.counts.panicked.load(Ordering::Relaxed),
            timed_out: self.counts.timed_out.load(Ordering::Relaxed),
            evicted: self.counts.evicted.load(Ordering::Relaxed),
        }
    }

    /// Dispatches one request line: cheap methods answer inline on the
    /// transport thread; analysis methods go through admission control into
    /// the pending queue.
    fn handle_line(self: &Arc<Self>, line: &str, default_client: &str, out: &Out) -> Flow {
        let req = match parse_request(line, default_client) {
            Ok(r) => r,
            Err(e) => {
                write_line(out, &err_response(&Value::Null, &e));
                return Flow::Continue;
            }
        };
        match req.method.as_str() {
            "health" => {
                let body = self.health_body();
                write_line(out, &ok_response(&req.id, body));
                Flow::Continue
            }
            "shutdown" => {
                self.begin_drain();
                write_line(
                    out,
                    &ok_response(
                        &req.id,
                        Value::Obj(vec![("draining".to_owned(), Value::Bool(true))]),
                    ),
                );
                Flow::Shutdown
            }
            // `evict` goes through the queue (not inline) so it stays FIFO
            // with the analysis requests that precede it.
            "load_program" | "edit" | "analyze" | "query_edge" | "evict" => {
                self.admit(req, out, false);
                Flow::Continue
            }
            // The observability plane also stays FIFO with analysis
            // requests (a `metrics` response reflects everything admitted
            // before it) but is *privileged*: it bypasses the token bucket
            // and the queue cap, because the telemetry that explains an
            // overload must stay readable during one.
            "metrics" | "slowlog" => {
                self.admit(req, out, true);
                Flow::Continue
            }
            other => {
                let e = ServeError::bad_request(format!("unknown method {other:?}"));
                write_line(out, &err_response(&req.id, &e));
                Flow::Continue
            }
        }
    }

    /// Per-resident decision-store sizes, name-sorted, plus their total.
    fn store_sizes(&self) -> (Vec<(String, u64)>, u64) {
        let residency = self.residency.lock().unwrap();
        let mut sizes: Vec<(String, u64)> = residency
            .map
            .iter()
            .map(|(n, r)| (n.clone(), r.store.as_ref().map_or(0, |s| s.file_bytes())))
            .collect();
        sizes.sort();
        let total = sizes.iter().map(|(_, b)| b).sum();
        (sizes, total)
    }

    /// Aggregate demand-tier health across residents: cached slices,
    /// lifetime query/fallback counts, and the mean per-query slice
    /// fraction.
    fn demand_health(&self) -> Value {
        let residency = self.residency.lock().unwrap();
        let (mut slices, mut queries, mut fallbacks, mut frac_sum) = (0u64, 0u64, 0u64, 0.0f64);
        for r in residency.map.values() {
            if let Some(d) = &*r.demand.lock().unwrap() {
                slices += d.slices_cached() as u64;
                let s = d.stats();
                queries += s.queries;
                fallbacks += s.fallbacks;
                frac_sum += s.slice_fraction_sum;
            }
        }
        let mean = if queries == 0 { 0.0 } else { frac_sum / queries as f64 };
        Value::Obj(vec![
            ("slices_cached".to_owned(), Value::uint(slices)),
            ("queries".to_owned(), Value::uint(queries)),
            ("fallbacks".to_owned(), Value::uint(fallbacks)),
            ("mean_slice_fraction".to_owned(), Value::Float(mean)),
        ])
    }

    fn health_body(&self) -> Value {
        let (sizes, store_bytes) = self.store_sizes();
        let programs = Value::Arr(sizes.iter().map(|(n, _)| Value::str(n.clone())).collect());
        let stores = Value::Obj(sizes.into_iter().map(|(n, b)| (n, Value::uint(b))).collect());
        let depth = self.queue.lock().unwrap().len();
        let uptime = self.started.elapsed();
        Value::Obj(vec![
            ("programs".to_owned(), programs),
            ("stores".to_owned(), stores),
            ("store_bytes".to_owned(), Value::uint(store_bytes)),
            ("queue_depth".to_owned(), Value::uint(depth as u64)),
            ("active".to_owned(), Value::uint(self.active.load(Ordering::Relaxed) as u64)),
            (
                "peak_active".to_owned(),
                Value::uint(self.telemetry.peak_active.load(Ordering::Relaxed)),
            ),
            ("demand".to_owned(), self.demand_health()),
            ("draining".to_owned(), Value::Bool(self.is_draining())),
            ("uptime_ms".to_owned(), Value::uint(uptime.as_millis() as u64)),
            ("uptime_s".to_owned(), Value::uint(uptime.as_secs())),
        ])
    }

    /// The Prometheus text exposition: daemon gauges, recent-window
    /// quantiles, and every counter/histogram in the telemetry registry.
    fn exposition(&self) -> String {
        let mut p = obs::prom::PromText::new();
        let (_, store_bytes) = self.store_sizes();
        let resident = self.residency.lock().unwrap().map.len();
        p.gauge("thresher_serve_resident_programs", "programs currently resident", resident as f64);
        p.gauge(
            "thresher_serve_store_bytes",
            "total bytes of resident decision stores",
            store_bytes as f64,
        );
        p.gauge(
            "thresher_serve_queue_depth",
            "pending requests in the queue",
            self.queue.lock().unwrap().len() as f64,
        );
        p.gauge(
            "thresher_serve_active_requests",
            "requests currently executing",
            self.active.load(Ordering::Relaxed) as f64,
        );
        p.gauge(
            "thresher_serve_peak_active_requests",
            "high-water mark of concurrently executing requests",
            self.telemetry.peak_active.load(Ordering::Relaxed) as f64,
        );
        p.gauge(
            "thresher_serve_uptime_seconds",
            "seconds since the daemon started",
            self.started.elapsed().as_secs_f64(),
        );
        p.gauge(
            "thresher_serve_draining",
            "1 while the daemon is draining",
            u64::from(self.is_draining()) as f64,
        );
        self.telemetry.windows_into(&mut p);
        p.registry("thresher_", &self.telemetry.registry);
        p.finish()
    }

    /// Admission control: drain check, per-client token bucket, bounded
    /// queue. Shed requests get an immediate structured error with a
    /// backoff hint plus the recent queue-wait estimate; admitted requests
    /// are queued for a worker. Privileged (observability) requests skip
    /// the bucket and the queue cap — see [`Self::handle_line`].
    fn admit(self: &Arc<Self>, req: Request, out: &Out, privileged: bool) {
        if self.is_draining() {
            self.shed(&req, out, ServeError::draining());
            return;
        }
        if !privileged && !self.bucket_allow(&req.client) {
            self.shed(&req, out, ServeError::rate_limited(100));
            return;
        }
        let deadline_ms = req.params.get("deadline_ms").and_then(Value::as_u64);
        let deadline = Instant::now()
            + deadline_ms.map_or(self.config.request_deadline, Duration::from_millis);
        let mut queue = self.queue.lock().unwrap();
        if !privileged && queue.len() >= self.config.queue_cap {
            drop(queue);
            self.shed(&req, out, ServeError::overloaded(100));
            return;
        }
        // Tally BEFORE the push (still under the queue lock): a worker
        // that pops this job and renders the exposition must already see
        // it counted, so `requests_admitted` in a `metrics` response
        // deterministically includes the scrape itself.
        let depth = queue.len() as u64 + 1;
        self.counts.admitted.fetch_add(1, Ordering::Relaxed);
        self.tally(Counter::RequestsAdmitted, 1);
        self.sample(Hist::QueueDepth, depth);
        self.telemetry.record_queue_depth(depth);
        queue.push_back(Job { req, deadline, queued_at: Instant::now(), out: out.clone() });
        drop(queue);
        self.cond.notify_one();
    }

    fn shed(&self, req: &Request, out: &Out, e: ServeError) {
        // Shed responses carry the recent queue-wait estimate so a client
        // can tell a backed-up daemon (large) from a rate-limit blip
        // (small) without another round trip.
        let e = e.with_queue_wait(self.telemetry.queue_wait_hint_ms());
        self.counts.shed.fetch_add(1, Ordering::Relaxed);
        self.tally(Counter::RequestsShed, 1);
        write_line(out, &err_response(&req.id, &e));
    }

    /// Takes one token from `client`'s bucket (refilled at
    /// [`ServeConfig::rate_per_sec`] up to [`ServeConfig::burst`]).
    fn bucket_allow(&self, client: &str) -> bool {
        let mut buckets = self.buckets.lock().unwrap();
        let now = Instant::now();
        let bucket = buckets
            .entry(client.to_owned())
            .or_insert_with(|| Bucket { tokens: self.config.burst, refilled: now });
        let elapsed = now.duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.config.rate_per_sec).min(self.config.burst);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Looks up a resident program and touches its LRU stamp.
    fn resident(&self, name: &str) -> Result<Arc<Resident>, ServeError> {
        let mut residency = self.residency.lock().unwrap();
        residency.tick += 1;
        let tick = residency.tick;
        match residency.map.get(name) {
            Some(r) => {
                r.last_used.store(tick, Ordering::Relaxed);
                Ok(r.clone())
            }
            None => Err(ServeError::not_loaded(name)),
        }
    }

    /// Inserts (or replaces) a resident program, then enforces the
    /// residency bound by evicting least-recently-used entries.
    fn insert_resident(&self, name: &str, resident: Arc<Resident>) {
        let mut residency = self.residency.lock().unwrap();
        residency.tick += 1;
        let tick = residency.tick;
        resident.last_used.store(tick, Ordering::Relaxed);
        residency.map.insert(name.to_owned(), resident);
        while residency.map.len() > self.config.max_resident.max(1) {
            let victim = residency
                .map
                .iter()
                .min_by_key(|(_, r)| r.last_used.load(Ordering::Relaxed))
                .map(|(n, _)| n.clone());
            match victim {
                Some(n) => {
                    residency.map.remove(&n);
                    self.counts.evicted.fetch_add(1, Ordering::Relaxed);
                    self.tally(Counter::ProgramsEvicted, 1);
                }
                None => break,
            }
        }
    }

    /// The per-request path-program budget: the requested (or CLI-default)
    /// budget, capped at this request's fair share of the global budget
    /// across currently executing requests. A solo request on a default
    /// daemon gets exactly the one-shot CLI default.
    fn fair_budget(&self, requested: Option<u64>) -> u64 {
        let active = self.active.load(Ordering::Relaxed).max(1) as u64;
        let share = (self.config.global_budget / active).max(1);
        requested.unwrap_or(10_000).min(share)
    }

    /// The engine configuration for one request. Deliberately does NOT set
    /// `total_deadline`: the deadline duration is part of the decision
    /// fingerprint (`symex::persist`), so a per-request remaining-time value
    /// would give every request a unique fingerprint and starve the
    /// resident cache. Deadlines are enforced at the daemon level instead
    /// (queue-expiry pre-check, post-completion check) and the path-program
    /// budget bounds engine work; a solo request's config is identical to a
    /// default one-shot CLI run's, so stores warm-start across both.
    fn engine_config(&self, requested: Option<u64>) -> SymexConfig {
        SymexConfig { budget: self.fair_budget(requested), ..SymexConfig::default() }
    }

    // ---- request handlers (run on a worker, inside capture+catch_unwind) ----

    fn execute(
        &self,
        req: &Request,
        deadline: Instant,
        phases: &mut Phases,
    ) -> Result<Value, ServeError> {
        match req.method.as_str() {
            "load_program" => self.do_load(req, phases),
            "edit" => self.do_edit(req, phases),
            "analyze" => self.do_analyze(req, deadline, phases),
            "query_edge" => self.do_query(req, deadline, phases),
            "evict" => {
                let name = param_str(req, "program")?;
                // Dropping the resident releases the points-to result, the
                // cross-edit fingerprint hashes, and every cached demand
                // slice; the response itemizes what went with it.
                let removed = self.residency.lock().unwrap().map.remove(name);
                let (evicted, hashes_dropped, demand_slices_dropped) = match &removed {
                    Some(r) => (
                        true,
                        r.hashes.lock().unwrap().len() as u64,
                        r.demand.lock().unwrap().as_ref().map_or(0, |d| d.slices_cached() as u64),
                    ),
                    None => (false, 0, 0),
                };
                Ok(Value::Obj(vec![
                    ("evicted".to_owned(), Value::Bool(evicted)),
                    ("hashes_dropped".to_owned(), Value::uint(hashes_dropped)),
                    ("demand_slices_dropped".to_owned(), Value::uint(demand_slices_dropped)),
                ]))
            }
            "metrics" => Ok(Value::Obj(vec![
                ("format".to_owned(), Value::str("prometheus-text-0.0.4")),
                ("exposition".to_owned(), Value::str(self.exposition())),
            ])),
            "slowlog" => {
                let limit = req.params.get("limit").and_then(Value::as_u64).unwrap_or(32) as usize;
                let (enabled, path, entries) = match &self.telemetry.slow {
                    Some(log) => {
                        (true, Value::str(log.path().display().to_string()), log.read(limit.max(1)))
                    }
                    None => (false, Value::Null, Vec::new()),
                };
                Ok(Value::Obj(vec![
                    ("enabled".to_owned(), Value::Bool(enabled)),
                    ("path".to_owned(), path),
                    ("entries".to_owned(), Value::Arr(entries)),
                ]))
            }
            other => Err(ServeError::bad_request(format!("unknown method {other:?}"))),
        }
    }

    fn do_load(&self, req: &Request, phases: &mut Phases) -> Result<Value, ServeError> {
        let name = req
            .params
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| ServeError::bad_request("load_program needs params.name"))?;
        let src = if let Some(s) = req.params.get("source").and_then(Value::as_str) {
            s.to_owned()
        } else if let Some(path) = req.params.get("path").and_then(Value::as_str) {
            std::fs::read_to_string(path)
                .map_err(|e| ServeError::internal(format!("cannot read {path}: {e}")))?
        } else {
            return Err(ServeError::bad_request("load_program needs params.source or params.path"));
        };
        let program = phases
            .time("parse", || tir::parse(&src))
            .map_err(|e| ServeError::bad_request(format!("parse error: {e}")))?;
        let (pta, modref) = phases.time("pta", || {
            let pta =
                pta::analyze_with(&program, ContextPolicy::Insensitive, &PtaOptions::default());
            let modref = ModRef::compute(&program, &pta);
            (pta, modref)
        });

        let (store, store_dir, cache) = phases.time("cache", || match &self.config.cache_root {
            Some(root) => {
                let dir = root.join(sanitize(name));
                match DecisionStore::open_with_limits(
                    &dir,
                    CacheMode::ReadWrite,
                    &program,
                    StoreLimits::with_max_bytes(self.config.cache_bytes_cap),
                ) {
                    Ok(s) => {
                        let desc = if s.lock_contended() { "read-only" } else { "read-write" };
                        (Some(Arc::new(s)), Some(dir), desc)
                    }
                    // A broken cache degrades the program to cold; it never
                    // fails the load.
                    Err(_) => (None, None, "off"),
                }
            }
            None => (None, None, "off"),
        });

        let locs = pta.locs().ids().count() as u64;
        let resident = Arc::new(Resident {
            program,
            pta: Arc::new(pta),
            modref,
            store,
            store_dir,
            incr: Mutex::new(None),
            demand: Mutex::new(None),
            hashes: Mutex::new(MethodHashCache::new()),
            load_obs: Mutex::new(MetricsDelta::default()),
            last_used: AtomicU64::new(0),
        });
        self.insert_resident(name, resident);
        Ok(Value::Obj(vec![
            ("program".to_owned(), Value::str(name)),
            ("locs".to_owned(), Value::uint(locs)),
            ("cache".to_owned(), Value::str(cache)),
        ]))
    }

    /// Applies an edit batch to a resident program through the delta
    /// solver: the program is re-parsed *nowhere* — the batch mutates the
    /// resident TIR in place (transactionally), the incremental solver
    /// incorporates exactly the delta, mod/ref re-scans only the changed
    /// methods, and the fingerprint cache is refreshed so surviving
    /// refutations keep warm-hitting the decision store.
    fn do_edit(&self, req: &Request, phases: &mut Phases) -> Result<Value, ServeError> {
        let name = param_str(req, "program")?;
        let res = self.resident(name)?;
        let ops = parse_edit_ops(req)?;

        // Take (or lazily build) the resident delta solver. It is removed
        // from the old resident while we work: a concurrent edit on the
        // same program falls back to a fresh solve rather than racing.
        let mut inc = match res.incr.lock().unwrap().take() {
            Some(inc) => inc,
            None => phases.time("pta", || {
                IncrementalPta::new(
                    &res.program,
                    ContextPolicy::Insensitive,
                    &PtaOptions::default(),
                )
            }),
        };

        let mut program = res.program.clone();
        let applied = match phases.time("edit", || tir::apply_edits(&mut program, &ops)) {
            Ok(applied) => applied,
            Err(e) => {
                // The batch was rejected atomically; hand the solver back.
                *res.incr.lock().unwrap() = Some(inc);
                return Err(ServeError::bad_request(format!("edit rejected: {e}")));
            }
        };
        let stats = phases.time("edit", || inc.apply_edits(&program, &applied));
        let (pta, modref, hashes) = phases.time("pta", || {
            let pta = inc.result(&program);
            let mut modref = res.modref.clone();
            modref.recompute(&program, &pta, &stats.changed_methods);
            // Refresh the fingerprint hash cache against the new state so
            // later requests attach the store without re-hashing anything.
            let mut hashes = std::mem::take(&mut *res.hashes.lock().unwrap());
            let config = SymexConfig::default();
            let _ = Fingerprinter::with_cache(
                &program,
                &pta,
                &config,
                &mut hashes,
                &stats.changed_methods,
            );
            (pta, modref, hashes)
        });
        let pta = Arc::new(pta);

        // Carry the demand tier across the edit: re-point its oracle and
        // traversal index at the post-edit state, dropping only cached
        // slices whose traversal touched a changed method.
        let (demand, demand_dropped) = match res.demand.lock().unwrap().take() {
            Some(mut d) => {
                let dropped = phases.time("pta", || {
                    d.on_edit(&inc, &program, Arc::clone(&pta), &stats.changed_methods)
                });
                (Some(d), dropped as u64)
            }
            None => (None, 0),
        };

        let changed: Vec<Value> =
            stats.changed_methods.iter().map(|&m| Value::str(program.method_name(m))).collect();
        let body = Value::Obj(vec![
            ("program".to_owned(), Value::str(name)),
            ("applied".to_owned(), Value::uint(applied.len() as u64)),
            ("rebuilt".to_owned(), Value::Bool(stats.rebuilt)),
            ("propagations".to_owned(), Value::uint(stats.propagations)),
            ("dirty_nodes".to_owned(), Value::uint(stats.dirty_nodes as u64)),
            ("total_nodes".to_owned(), Value::uint(stats.total_nodes as u64)),
            ("changed_methods".to_owned(), Value::Arr(changed)),
            (
                "fingerprints".to_owned(),
                Value::Obj(vec![
                    ("hits".to_owned(), Value::uint(hashes.hits())),
                    ("recomputed".to_owned(), Value::uint(hashes.recomputed())),
                ]),
            ),
            ("demand_slices_dropped".to_owned(), Value::uint(demand_dropped)),
        ]);

        // Replace-on-edit: the new resident inherits the store (same
        // program name, fingerprints invalidate stale records), the delta
        // solver, and the refreshed hash cache.
        let resident = Arc::new(Resident {
            program,
            pta,
            modref,
            store: res.store.clone(),
            store_dir: res.store_dir.clone(),
            incr: Mutex::new(Some(inc)),
            demand: Mutex::new(demand),
            hashes: Mutex::new(hashes),
            load_obs: Mutex::new(res.load_obs.lock().unwrap().clone()),
            last_used: AtomicU64::new(0),
        });
        self.insert_resident(name, resident);
        Ok(body)
    }

    fn do_query(
        &self,
        req: &Request,
        deadline: Instant,
        phases: &mut Phases,
    ) -> Result<Value, ServeError> {
        let name = param_str(req, "program")?;
        let res = self.resident(name)?;
        self.maybe_fault(req, &res, deadline)?;
        let global_name = param_str(req, "global")?;
        let loc_name = param_str(req, "loc")?;
        let global = res
            .program
            .global_by_name(global_name)
            .ok_or_else(|| ServeError::bad_request(format!("no global named {global_name}")))?;
        let target = res
            .pta
            .locs()
            .ids()
            .find(|&l| res.pta.loc_name(&res.program, l) == loc_name)
            .ok_or_else(|| {
                ServeError::bad_request(format!("no abstract location named {loc_name}"))
            })?;

        let config = self.engine_config(req.params.get("budget").and_then(Value::as_u64));
        phases.note_budget(config.budget);

        // Demand tier: with `"demand": true` the query runs against a
        // slice computed (or reused) for this alarm's source global; the
        // resident exhaustive result stays attached as the differential
        // oracle, so out-of-slice lookups and gate mismatches resolve
        // against it — never a wrong answer.
        let use_demand = matches!(req.params.get("demand"), Some(Value::Bool(true)));
        let (partial, demand_stats): (Option<Arc<PartialPtaResult>>, Option<DemandQueryStats>) =
            if use_demand {
                let mut guard = res.demand.lock().unwrap();
                if guard.is_none() {
                    // First demand query: build the traversal index off the
                    // resident delta solver (lazily created, then kept for
                    // later edits), sharing the resident oracle.
                    let mut inc_guard = res.incr.lock().unwrap();
                    if inc_guard.is_none() {
                        *inc_guard = Some(phases.time("pta", || {
                            IncrementalPta::new(
                                &res.program,
                                ContextPolicy::Insensitive,
                                &PtaOptions::default(),
                            )
                        }));
                    }
                    let inc = inc_guard.as_ref().expect("just built");
                    *guard = Some(phases.time("pta", || {
                        DemandPta::from_incremental_with_oracle(
                            inc,
                            &res.program,
                            Arc::clone(&res.pta),
                        )
                    }));
                }
                let d = guard.as_mut().expect("just built");
                if let Some(b) = req.params.get("demand_budget").and_then(Value::as_u64) {
                    d.set_budget(b as usize);
                }
                let (p, st) = phases.time("pta", || d.query_global(&res.program, global));
                (Some(p), Some(st))
            } else {
                (None, None)
            };
        let pta_view: &dyn PtaView = match &partial {
            Some(p) => &**p,
            None => &*res.pta,
        };

        let mut sched =
            RefutationScheduler::new(&res.program, pta_view, &res.modref, config, self.config.jobs);
        if let Some(store) = &res.store {
            // Attach through the cross-edit hash cache: after the first
            // request (or an edit) every per-method hash is a lookup.
            phases.time("cache", || {
                let mut hashes = res.hashes.lock().unwrap();
                sched.set_store_cached(store.clone(), &mut hashes, &[]);
            });
        }
        let mut view = HeapGraphView::new(pta_view);
        let job = ReachJob { source: global, targets: BitSet::singleton(target.index()) };
        let outcome = phases.time("symex", || sched.run(&mut view, std::slice::from_ref(&job)));
        let verdict = outcome.verdicts.into_iter().next().expect("one verdict per job");
        let mut body = match verdict {
            JobVerdict::Refuted { refuted_edges } => vec![
                ("reachable".to_owned(), Value::Bool(false)),
                ("refuted_edges".to_owned(), Value::uint(refuted_edges.len() as u64)),
            ],
            JobVerdict::Witnessed { path, .. } => {
                let edges =
                    path.iter().map(|e| Value::str(e.describe(&res.program, pta_view))).collect();
                vec![
                    ("reachable".to_owned(), Value::Bool(true)),
                    ("path".to_owned(), Value::Arr(edges)),
                ]
            }
        };
        body.push(("edge_timeouts".to_owned(), Value::uint(outcome.tally.edge_timeouts)));
        if let Some(ds) = demand_stats {
            body.push((
                "demand".to_owned(),
                Value::Obj(vec![
                    ("nodes_touched".to_owned(), Value::uint(ds.nodes_touched)),
                    ("demand_fallbacks".to_owned(), Value::uint(u64::from(ds.fallback))),
                    ("slice_fraction".to_owned(), Value::Float(ds.slice_fraction)),
                    ("cache_hit".to_owned(), Value::Bool(ds.cache_hit)),
                    ("drift".to_owned(), Value::uint(ds.drift)),
                ]),
            ));
        }
        Ok(Value::Obj(body))
    }

    fn do_analyze(
        &self,
        req: &Request,
        deadline: Instant,
        phases: &mut Phases,
    ) -> Result<Value, ServeError> {
        let name = param_str(req, "program")?;
        let res = self.resident(name)?;
        self.maybe_fault(req, &res, deadline)?;
        // `"client": "null"` selects the null-dereference client; the
        // default remains the Activity-leak client (which needs the
        // Android model). Any other value is a usage error.
        match req.params.get("client").and_then(Value::as_str) {
            Some("null") => return self.do_analyze_null(req, &res, phases),
            Some("leaks") | None => {}
            Some(other) => {
                return Err(ServeError::bad_request(format!(
                    "unknown client {other:?} (expected: null or leaks)"
                )));
            }
        }
        if res.program.class_by_name("Activity").is_none() {
            return Err(ServeError::bad_request(format!(
                "program {name:?} has no Android library model (no class Activity); \
                 analyze needs one"
            )));
        }
        let config = self.engine_config(req.params.get("budget").and_then(Value::as_u64));
        phases.note_budget(config.budget);
        let mut client = android::LeakClient::new(&res.program, &res.pta, &res.modref, config)
            .with_jobs(self.config.jobs);
        if let Some(store) = &res.store {
            client = client.with_store(store.clone());
        }
        let report = phases.time("symex", || client.run());
        let alarms = report
            .alarms
            .iter()
            .map(|(alarm, result)| {
                Value::Obj(vec![
                    ("field".to_owned(), Value::str(res.program.global(alarm.field).name.clone())),
                    ("refuted".to_owned(), Value::Bool(result.is_refuted())),
                ])
            })
            .collect();
        Ok(Value::Obj(vec![
            ("alarms".to_owned(), Value::Arr(alarms)),
            ("num_alarms".to_owned(), Value::uint(report.num_alarms() as u64)),
            ("num_refuted".to_owned(), Value::uint(report.num_refuted() as u64)),
            ("edges_refuted".to_owned(), Value::uint(report.stats.edges_refuted as u64)),
            ("edges_witnessed".to_owned(), Value::uint(report.stats.edges_witnessed as u64)),
            ("edge_timeouts".to_owned(), Value::uint(report.stats.edge_timeouts as u64)),
        ]))
    }

    /// The `analyze` variant for `"client": "null"`: runs the
    /// null-dereference client against the resident analysis. The
    /// response body is [`crate::null::NullReport::to_value`] — stable
    /// across jobs/cache/solver — and the request's cost block reports
    /// the refutation time under `symex` like every other analyze.
    fn do_analyze_null(
        &self,
        req: &Request,
        res: &Resident,
        phases: &mut Phases,
    ) -> Result<Value, ServeError> {
        let config = self.engine_config(req.params.get("budget").and_then(Value::as_u64));
        phases.note_budget(config.budget);
        let mut client =
            crate::null::NullClient::new(&res.program, &res.pta, &res.modref, config)
                .with_jobs(self.config.jobs);
        if let Some(store) = &res.store {
            client = client.with_store(store.clone());
        }
        let report = phases.time("symex", || client.run());
        Ok(report.to_value(&res.program))
    }

    /// Honors a request's `"inject"` parameter (only with
    /// [`ServeConfig::inject`]; see [`faults`]).
    fn maybe_fault(
        &self,
        req: &Request,
        res: &Resident,
        deadline: Instant,
    ) -> Result<(), ServeError> {
        let Some(name) = req.params.get("inject").and_then(Value::as_str) else {
            return Ok(());
        };
        if !self.config.inject {
            return Err(ServeError::bad_request(
                "fault injection is disabled (start the daemon with --inject)",
            ));
        }
        let fault: Fault = name.parse().map_err(ServeError::bad_request)?;
        match fault {
            Fault::Panic => panic!("injected fault: panic"),
            Fault::Stall => {
                // A runaway request: blow through the deadline, then let the
                // post-completion check turn the answer into a deadline
                // error.
                let stop = deadline + Duration::from_millis(50);
                while Instant::now() < stop {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Ok(())
            }
            Fault::CorruptCache | Fault::TornWrite => {
                let dir = res.store_dir.as_deref().ok_or_else(|| {
                    ServeError::bad_request("cache faults need a daemon cache (--cache-dir)")
                })?;
                let damage = match fault {
                    Fault::CorruptCache => faults::corrupt_store(dir),
                    _ => faults::tear_store(dir),
                };
                damage.map_err(|e| ServeError::internal(format!("fault injection failed: {e}")))
            }
        }
    }

    /// Builds the optional per-request [`RunReport`]: the program's load
    /// delta (so the report covers the same work as a one-shot run) plus
    /// this request's own delta, replayed into a fresh registry.
    fn request_report(&self, req: &Request, delta: &MetricsDelta) -> Value {
        let registry = Registry::new();
        if req.method != "load_program" {
            if let Some(name) = req.params.get("program").and_then(Value::as_str) {
                if let Some(res) = self.residency.lock().unwrap().map.get(name).cloned() {
                    res.load_obs.lock().unwrap().replay_into(&registry);
                }
            }
        }
        delta.replay_into(&registry);
        RunReport::from_registry(&registry, &[("tool", "thresher-serve")], 0, 0).to_value()
    }
}

/// One request-handler thread: pop, check the deadline, run the handler
/// inside capture + `catch_unwind`, commit the metrics delta, attach the
/// cost block, respond — and feed the telemetry plane (latency windows,
/// queue-wait samples, slow log) along the way.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(j) = queue.pop_front() {
                    break Some(j);
                }
                if shared.is_draining() {
                    break None;
                }
                let (q, _) = shared.cond.wait_timeout(queue, Duration::from_millis(100)).unwrap();
                queue = q;
            }
        };
        let Some(job) = job else { return };

        let queue_wait_us = u64::try_from(job.queued_at.elapsed().as_micros()).unwrap_or(u64::MAX);
        shared.sample(Hist::QueueWaitMicros, queue_wait_us);
        shared.telemetry.record_queue_wait(queue_wait_us);

        if Instant::now() >= job.deadline {
            shared.counts.timed_out.fetch_add(1, Ordering::Relaxed);
            shared.tally(Counter::RequestsTimedOut, 1);
            let e = ServeError::deadline("deadline expired while queued");
            write_line(&job.out, &err_response(&job.req.id, &e));
            continue;
        }

        let active = shared.active.fetch_add(1, Ordering::Relaxed) + 1;
        shared.telemetry.note_active(active as u64);
        let mut phases = Phases::start();
        // catch_unwind sits INSIDE the capture closure so a panicking
        // handler still yields its (discarded) delta instead of unwinding
        // through the capture machinery; the daemon-level serve counters
        // below are bumped outside the capture so they land on the global
        // recorder (and the telemetry registry), never in a per-request
        // report.
        let (result, delta) = obs::capture(|| {
            catch_unwind(AssertUnwindSafe(|| shared.execute(&job.req, job.deadline, &mut phases)))
        });
        shared.active.fetch_sub(1, Ordering::Relaxed);

        let wall_us = phases.elapsed_us();
        shared.sample(Hist::RequestMicros, wall_us);
        shared.telemetry.record_latency(&job.req.method, wall_us);

        let (line, outcome) = match result {
            Err(payload) => {
                shared.counts.panicked.fetch_add(1, Ordering::Relaxed);
                shared.tally(Counter::RequestsPanicked, 1);
                let e = ServeError::panic(panic_message(payload.as_ref()));
                (err_response(&job.req.id, &e), "panic".to_owned())
            }
            Ok(Err(e)) => {
                if e.code == ErrorCode::Deadline {
                    shared.counts.timed_out.fetch_add(1, Ordering::Relaxed);
                    shared.tally(Counter::RequestsTimedOut, 1);
                }
                (err_response(&job.req.id, &e), format!("err:{}", e.code.as_str()))
            }
            Ok(Ok(body)) => {
                if Instant::now() > job.deadline {
                    shared.counts.timed_out.fetch_add(1, Ordering::Relaxed);
                    shared.tally(Counter::RequestsTimedOut, 1);
                    let e = ServeError::deadline("request completed after its deadline");
                    (err_response(&job.req.id, &e), "err:deadline".to_owned())
                } else {
                    // A successful request commits its buffered metrics to
                    // the global recorder AND the telemetry registry;
                    // failed requests discard theirs, so a contained panic
                    // can't half-apply. Both sinks see the same deltas,
                    // which is why exposition totals match report totals.
                    delta.replay();
                    delta.replay_into(&shared.telemetry.registry);
                    if job.req.method == "load_program" {
                        if let Some(name) = job.req.params.get("name").and_then(Value::as_str) {
                            if let Ok(res) = shared.resident(name) {
                                *res.load_obs.lock().unwrap() = delta.clone();
                            }
                        }
                    }
                    shared.counts.completed.fetch_add(1, Ordering::Relaxed);
                    shared.tally(Counter::RequestsCompleted, 1);
                    let mut body = body;
                    if let Value::Obj(fields) = &mut body {
                        // Every queued method answers with its cost block;
                        // strip it before byte-comparing answers (it holds
                        // wall-clock times). The counts inside are delta-
                        // derived and jobs-invariant.
                        let mut cost = cost_value(&delta, &phases, wall_us, queue_wait_us);
                        // Demand-tier queries surface their slice cost at
                        // the cost top level (phases keys stay fixed).
                        let demand_cost: Vec<(String, Value)> = fields
                            .iter()
                            .find(|(k, _)| k == "demand")
                            .map(|(_, v)| {
                                ["nodes_touched", "demand_fallbacks", "slice_fraction"]
                                    .iter()
                                    .filter_map(|&k| {
                                        v.get(k).map(|val| (k.to_owned(), val.clone()))
                                    })
                                    .collect()
                            })
                            .unwrap_or_default();
                        if let Value::Obj(cf) = &mut cost {
                            cf.extend(demand_cost);
                        }
                        fields.push(("cost".to_owned(), cost));
                        if wants_report(&job.req) {
                            fields.push((
                                "report".to_owned(),
                                shared.request_report(&job.req, &delta),
                            ));
                        }
                    }
                    (ok_response(&job.req.id, body), "ok".to_owned())
                }
            }
        };

        // Slow-request forensics: any executed request (ok, error, or
        // contained panic) past the threshold leaves its span list + cost
        // block in the bounded JSONL log.
        if let Some(slow) = &shared.telemetry.slow {
            let threshold_us =
                u64::try_from(shared.config.slow_threshold.as_micros()).unwrap_or(u64::MAX);
            if wall_us >= threshold_us {
                let entry = Value::Obj(vec![
                    ("ts_us".to_owned(), Value::uint(obs::now_us())),
                    ("id".to_owned(), job.req.id.clone()),
                    ("method".to_owned(), Value::str(job.req.method.clone())),
                    ("client".to_owned(), Value::str(job.req.client.clone())),
                    ("outcome".to_owned(), Value::str(outcome)),
                    ("queue_wait_us".to_owned(), Value::uint(queue_wait_us)),
                    ("spans".to_owned(), phases.spans_value()),
                    ("cost".to_owned(), cost_value(&delta, &phases, wall_us, queue_wait_us)),
                ]);
                slow.append(&entry);
                shared.tally(Counter::RequestsSlow, 1);
            }
        }

        write_line(&job.out, &line);
    }
}

fn wants_report(req: &Request) -> bool {
    matches!(req.params.get("report"), Some(Value::Bool(true)))
}

/// Decodes `params.edits`: an array of `{op, ...}` objects mirroring
/// [`tir::EditOp`] — `add_stmt`/`replace_stmt` (`method`, `at`, `text`),
/// `remove_stmt` (`method`, `at`), `add_method` (`text`, optional
/// `class`), `remove_method` (`method`).
fn parse_edit_ops(req: &Request) -> Result<Vec<EditOp>, ServeError> {
    let arr = req
        .params
        .get("edits")
        .and_then(Value::as_arr)
        .ok_or_else(|| ServeError::bad_request("edit needs params.edits (array)"))?;
    if arr.is_empty() {
        return Err(ServeError::bad_request("edit needs a non-empty params.edits"));
    }
    arr.iter()
        .enumerate()
        .map(|(i, v)| {
            protocol::edit_op_from_value(v)
                .map_err(|e| ServeError::bad_request(format!("edits[{i}]: {e}")))
        })
        .collect()
}

fn param_str<'r>(req: &'r Request, key: &str) -> Result<&'r str, ServeError> {
    req.params
        .get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| ServeError::bad_request(format!("{} needs params.{key}", req.method)))
}

fn write_line(out: &Out, line: &str) {
    if let Ok(mut o) = out.lock() {
        let _ = writeln!(o, "{line}");
        let _ = o.flush();
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// Maps a program name onto a filesystem-safe cache-directory name.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROGRAM: &str = r#"
class Box { field item: Object; }
global CACHE: Box;
fn main() {
  var b: Box;
  var secret: Object;
  var s: Object;
  b = new Box @box0;
  secret = new Object @secret0;
  s = new Object @str0;
  b.item = s;
  $CACHE = b;
}
entry main;
"#;

    fn load_line(id: u64) -> String {
        let params = Value::Obj(vec![
            ("name".to_owned(), Value::str("boxy")),
            ("source".to_owned(), Value::str(PROGRAM)),
        ]);
        Value::Obj(vec![
            ("id".to_owned(), Value::uint(id)),
            ("method".to_owned(), Value::str("load_program")),
            ("params".to_owned(), params),
        ])
        .to_json()
    }

    fn response_for(lines: &[String], id: u64) -> &str {
        lines
            .iter()
            .find(|l| {
                obs::json::parse(l).ok().and_then(|v| v.get("id").and_then(Value::as_u64))
                    == Some(id)
            })
            .unwrap_or_else(|| panic!("no response with id {id} in {lines:?}"))
    }

    #[test]
    fn load_query_health_shutdown() {
        let daemon = Daemon::new(ServeConfig::default());
        let script = format!(
            "{}\n\
             {{\"id\": 2, \"method\": \"query_edge\", \"params\": {{\"program\": \"boxy\", \"global\": \"CACHE\", \"loc\": \"secret0\"}}}}\n\
             {{\"id\": 3, \"method\": \"query_edge\", \"params\": {{\"program\": \"boxy\", \"global\": \"CACHE\", \"loc\": \"str0\"}}}}\n\
             {{\"id\": 4, \"method\": \"health\"}}\n\
             {{\"id\": 5, \"method\": \"shutdown\"}}\n",
            load_line(1)
        );
        let (lines, summary) = daemon.run_script(&script);
        let ok = |id| {
            obs::json::parse(response_for(&lines, id))
                .unwrap()
                .get("ok")
                .cloned()
                .unwrap_or_else(|| panic!("id {id} not ok: {lines:?}"))
        };
        assert_eq!(ok(1).get("program").and_then(Value::as_str), Some("boxy"));
        assert!(matches!(ok(2).get("reachable"), Some(Value::Bool(false))));
        assert!(matches!(ok(3).get("reachable"), Some(Value::Bool(true))));
        let health = ok(4);
        assert!(matches!(health.get("draining"), Some(Value::Bool(false))));
        assert!(matches!(ok(5).get("draining"), Some(Value::Bool(true))));
        assert_eq!(summary.admitted, 3);
        assert_eq!(summary.completed, 3);
        assert_eq!(summary.panicked, 0);
    }

    #[test]
    fn edit_updates_resident_analysis() {
        let config = ServeConfig { workers: 1, ..ServeConfig::default() };
        let daemon = Daemon::new(config);
        // `b.item = secret;` lands before `$CACHE = b;` (ordinal 4), making
        // the previously-refuted CACHE → secret0 path witnessable.
        let script = format!(
            "{}\n\
             {{\"id\": 2, \"method\": \"query_edge\", \"params\": {{\"program\": \"boxy\", \"global\": \"CACHE\", \"loc\": \"secret0\"}}}}\n\
             {{\"id\": 3, \"method\": \"edit\", \"params\": {{\"program\": \"boxy\", \"edits\": [{{\"op\": \"add_stmt\", \"method\": \"main\", \"at\": 4, \"text\": \"b.item = secret;\"}}]}}}}\n\
             {{\"id\": 4, \"method\": \"query_edge\", \"params\": {{\"program\": \"boxy\", \"global\": \"CACHE\", \"loc\": \"secret0\"}}}}\n\
             {{\"id\": 5, \"method\": \"edit\", \"params\": {{\"program\": \"boxy\", \"edits\": [{{\"op\": \"remove_stmt\", \"method\": \"main\", \"at\": 4}}]}}}}\n\
             {{\"id\": 6, \"method\": \"query_edge\", \"params\": {{\"program\": \"boxy\", \"global\": \"CACHE\", \"loc\": \"secret0\"}}}}\n\
             {{\"id\": 7, \"method\": \"edit\", \"params\": {{\"program\": \"boxy\", \"edits\": [{{\"op\": \"remove_stmt\", \"method\": \"main\", \"at\": 99}}]}}}}\n",
            load_line(1)
        );
        let (lines, summary) = daemon.run_script(&script);
        let parsed = |id| obs::json::parse(response_for(&lines, id)).unwrap();
        let ok = |id: u64| {
            parsed(id).get("ok").cloned().unwrap_or_else(|| panic!("id {id} not ok: {lines:?}"))
        };
        assert!(matches!(ok(2).get("reachable"), Some(Value::Bool(false))));
        let edit = ok(3);
        assert_eq!(edit.get("applied").and_then(Value::as_u64), Some(1));
        assert!(matches!(edit.get("rebuilt"), Some(Value::Bool(false))));
        assert!(matches!(ok(4).get("reachable"), Some(Value::Bool(true))));
        let edit = ok(5);
        assert!(matches!(edit.get("rebuilt"), Some(Value::Bool(true))));
        assert!(matches!(ok(6).get("reachable"), Some(Value::Bool(false))));
        // An invalid batch is rejected atomically and leaves the resident
        // program untouched.
        let err = parsed(7).get("err").cloned().expect("invalid edit errs");
        assert_eq!(err.get("code").and_then(Value::as_str), Some("bad-request"));
        assert_eq!(summary.completed, 6);
        assert_eq!(summary.panicked, 0);
    }

    #[test]
    fn demand_query_matches_exhaustive_and_survives_edits() {
        let config = ServeConfig { workers: 1, ..ServeConfig::default() };
        let daemon = Daemon::new(config);
        let script = format!(
            "{}\n\
             {{\"id\": 2, \"method\": \"query_edge\", \"params\": {{\"program\": \"boxy\", \"global\": \"CACHE\", \"loc\": \"secret0\"}}}}\n\
             {{\"id\": 3, \"method\": \"query_edge\", \"params\": {{\"program\": \"boxy\", \"global\": \"CACHE\", \"loc\": \"secret0\", \"demand\": true}}}}\n\
             {{\"id\": 4, \"method\": \"query_edge\", \"params\": {{\"program\": \"boxy\", \"global\": \"CACHE\", \"loc\": \"str0\", \"demand\": true}}}}\n\
             {{\"id\": 5, \"method\": \"query_edge\", \"params\": {{\"program\": \"boxy\", \"global\": \"CACHE\", \"loc\": \"str0\", \"demand\": true}}}}\n\
             {{\"id\": 6, \"method\": \"edit\", \"params\": {{\"program\": \"boxy\", \"edits\": [{{\"op\": \"add_stmt\", \"method\": \"main\", \"at\": 4, \"text\": \"b.item = secret;\"}}]}}}}\n\
             {{\"id\": 7, \"method\": \"query_edge\", \"params\": {{\"program\": \"boxy\", \"global\": \"CACHE\", \"loc\": \"secret0\", \"demand\": true}}}}\n\
             {{\"id\": 8, \"method\": \"health\"}}\n\
             {{\"id\": 9, \"method\": \"evict\", \"params\": {{\"program\": \"boxy\"}}}}\n",
            load_line(1)
        );
        let (lines, summary) = daemon.run_script(&script);
        let ok = |id: u64| {
            obs::json::parse(response_for(&lines, id))
                .unwrap()
                .get("ok")
                .cloned()
                .unwrap_or_else(|| panic!("id {id} not ok: {lines:?}"))
        };
        // Demand answers agree with the exhaustive tier on both verdicts.
        assert!(matches!(ok(2).get("reachable"), Some(Value::Bool(false))));
        let demand_refuted = ok(3);
        assert!(matches!(demand_refuted.get("reachable"), Some(Value::Bool(false))));
        let block = demand_refuted.get("demand").cloned().expect("demand block");
        assert_eq!(block.get("drift").and_then(Value::as_u64), Some(0));
        assert!(matches!(block.get("cache_hit"), Some(Value::Bool(false))));
        // The slice cost surfaces at the cost top level too.
        let cost = demand_refuted.get("cost").cloned().expect("cost block");
        assert!(cost.get("nodes_touched").is_some());
        assert!(cost.get("slice_fraction").is_some());
        assert!(matches!(ok(4).get("reachable"), Some(Value::Bool(true))));
        // Same global again: answered from the slice cache.
        let warm = ok(5);
        let block = warm.get("demand").cloned().expect("demand block");
        assert!(matches!(block.get("cache_hit"), Some(Value::Bool(true))));
        assert_eq!(block.get("nodes_touched").and_then(Value::as_u64), Some(0));
        // The edit invalidates the CACHE slice; the re-query is exact
        // against the post-edit program (secret0 now reachable).
        let edit = ok(6);
        assert!(edit.get("demand_slices_dropped").and_then(Value::as_u64).unwrap_or(0) >= 1);
        let post = ok(7);
        assert!(matches!(post.get("reachable"), Some(Value::Bool(true))));
        let block = post.get("demand").cloned().expect("demand block");
        assert_eq!(block.get("drift").and_then(Value::as_u64), Some(0));
        assert!(matches!(block.get("cache_hit"), Some(Value::Bool(false))));
        // Health aggregates the tier (the snapshot is privileged and races
        // the queued queries, so only the shape is asserted); evict runs in
        // queue order and itemizes exactly what it drops.
        let health = ok(8);
        let dh = health.get("demand").cloned().expect("health demand block");
        assert!(dh.get("slices_cached").and_then(Value::as_u64).is_some());
        assert!(dh.get("fallbacks").and_then(Value::as_u64).is_some());
        assert!(dh.get("mean_slice_fraction").and_then(Value::as_f64).is_some());
        let evict = ok(9);
        assert!(matches!(evict.get("evicted"), Some(Value::Bool(true))));
        assert!(evict.get("demand_slices_dropped").and_then(Value::as_u64).unwrap_or(0) >= 1);
        assert!(evict.get("hashes_dropped").is_some());
        assert_eq!(summary.panicked, 0);
    }

    #[test]
    fn unknown_method_and_bad_json_answer_inline() {
        let daemon = Daemon::new(ServeConfig::default());
        let (lines, summary) =
            daemon.run_script("{\"id\": 1, \"method\": \"transmogrify\"}\nnot json at all\n");
        assert_eq!(lines.len(), 2);
        assert!(response_for(&lines, 1).contains("bad-request"));
        assert!(lines.iter().any(|l| l.contains("invalid JSON")));
        assert_eq!(summary.admitted, 0);
    }

    #[test]
    fn rate_limit_sheds_with_hint() {
        let config = ServeConfig { rate_per_sec: 0.0, burst: 1.0, ..ServeConfig::default() };
        let daemon = Daemon::new(config);
        // Both name a program that is not loaded: the first is admitted and
        // fails with not-loaded, the second never gets a token.
        let (lines, summary) = daemon.run_script(
            "{\"id\": 1, \"method\": \"query_edge\", \"params\": {\"program\": \"ghost\", \"global\": \"G\", \"loc\": \"l\"}}\n\
             {\"id\": 2, \"method\": \"query_edge\", \"params\": {\"program\": \"ghost\", \"global\": \"G\", \"loc\": \"l\"}}\n",
        );
        assert!(response_for(&lines, 1).contains("not-loaded"));
        let shed = obs::json::parse(response_for(&lines, 2)).unwrap();
        let err = shed.get("err").expect("err");
        assert_eq!(err.get("code").and_then(Value::as_str), Some("rate-limited"));
        assert!(err.get("retry_after_ms").and_then(Value::as_u64).is_some());
        assert_eq!(summary.admitted, 1);
        assert_eq!(summary.shed, 1);
    }

    #[test]
    fn eviction_enforces_residency_bound() {
        let config = ServeConfig { max_resident: 2, ..ServeConfig::default() };
        let daemon = Daemon::new(config);
        let mut script = String::new();
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            let params = Value::Obj(vec![
                ("name".to_owned(), Value::str(*name)),
                ("source".to_owned(), Value::str(PROGRAM)),
            ]);
            let line = Value::Obj(vec![
                ("id".to_owned(), Value::uint(i as u64 + 1)),
                ("method".to_owned(), Value::str("load_program")),
                ("params".to_owned(), params),
            ])
            .to_json();
            script.push_str(&line);
            script.push('\n');
        }
        script.push_str("{\"id\": 9, \"method\": \"health\"}\n");
        // The health snapshot races the queued loads, so check the summary
        // instead of the inline response.
        let (_lines, summary) = daemon.run_script(&script);
        assert_eq!(summary.completed, 3);
        assert_eq!(summary.evicted, 1);
    }

    #[test]
    fn injection_requires_opt_in() {
        let daemon = Daemon::new(ServeConfig::default());
        let script = format!(
            "{}\n\
             {{\"id\": 2, \"method\": \"query_edge\", \"params\": {{\"program\": \"boxy\", \"global\": \"CACHE\", \"loc\": \"str0\", \"inject\": \"panic\"}}}}\n",
            load_line(1)
        );
        let (lines, summary) = daemon.run_script(&script);
        let v = obs::json::parse(response_for(&lines, 2)).unwrap();
        let err = v.get("err").expect("err");
        assert_eq!(err.get("code").and_then(Value::as_str), Some("bad-request"));
        assert_eq!(summary.panicked, 0);
    }

    #[test]
    fn contained_panic_keeps_serving() {
        let config = ServeConfig { inject: true, workers: 1, ..ServeConfig::default() };
        let daemon = Daemon::new(config);
        let script = format!(
            "{}\n\
             {{\"id\": 2, \"method\": \"query_edge\", \"params\": {{\"program\": \"boxy\", \"global\": \"CACHE\", \"loc\": \"str0\", \"inject\": \"panic\"}}}}\n\
             {{\"id\": 3, \"method\": \"query_edge\", \"params\": {{\"program\": \"boxy\", \"global\": \"CACHE\", \"loc\": \"str0\"}}}}\n",
            load_line(1)
        );
        let (lines, summary) = daemon.run_script(&script);
        let v = obs::json::parse(response_for(&lines, 2)).unwrap();
        let err = v.get("err").expect("panicked request errs");
        assert_eq!(err.get("code").and_then(Value::as_str), Some("panic"));
        assert_eq!(err.get("stop_reason").and_then(Value::as_str), Some("panic"));
        let v = obs::json::parse(response_for(&lines, 3)).unwrap();
        assert!(matches!(v.get("ok").and_then(|o| o.get("reachable")), Some(Value::Bool(true))));
        assert_eq!(summary.panicked, 1);
        assert_eq!(summary.completed, 2);
    }
}
