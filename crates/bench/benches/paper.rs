//! Criterion micro-benchmarks over the paper's experiments.
//!
//! Each bench group corresponds to a table/figure; the `reproduce` binary
//! regenerates the full-format tables (with the paper's 10k budget), while
//! these benches use small budgets so iteration counts stay reasonable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use apps::figures;
use pta::{ContextPolicy, HeapEdge, ModRef};
use symex::{Engine, LoopMode, Representation, SymexConfig};

/// Figure 1/2: time to refute `arr0.contents -> act0` under each query
/// representation (the Table 2 contrast on the running example).
fn bench_fig1_representations(c: &mut Criterion) {
    let program = figures::fig1();
    let pta = pta::analyze(&program, ContextPolicy::Insensitive);
    let modref = ModRef::compute(&program, &pta);
    let arr0 = pta.locs().ids().find(|&l| pta.loc_name(&program, l) == "arr0").unwrap();
    let act0 = pta.locs().ids().find(|&l| pta.loc_name(&program, l) == "act0").unwrap();
    let edge = HeapEdge::Field { base: arr0, field: program.contents_field, target: act0 };

    let mut group = c.benchmark_group("table2_fig1_refutation");
    for (name, repr) in [
        ("mixed", Representation::Mixed),
        ("fully_symbolic", Representation::FullySymbolic),
        ("fully_explicit", Representation::FullyExplicit),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &repr, |b, &repr| {
            b.iter(|| {
                let cfg = SymexConfig::default().with_representation(repr);
                let mut engine = Engine::new(&program, &pta, &modref, cfg);
                std::hint::black_box(engine.refute_edge(&edge))
            });
        });
    }
    group.finish();
}

/// Hypothesis 2: the leak client on a small app with and without query
/// simplification.
fn bench_simplification(c: &mut Criterion) {
    let app = apps::suite::standuptimer();
    let mut group = c.benchmark_group("hyp2_simplification_standuptimer");
    group.sample_size(10);
    for (name, simplify) in [("with", true), ("without", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &simplify, |b, &on| {
            b.iter(|| {
                let cfg = SymexConfig::default().with_simplification(on).with_budget(2_000);
                std::hint::black_box(bench::run_table1_row(&app, true, cfg))
            });
        });
    }
    group.finish();
}

/// Hypothesis 3: loop handling on the multi-container micro benchmark.
fn bench_loop_modes(c: &mut Criterion) {
    let program = figures::multi_map();
    let pta = pta::analyze(&program, ContextPolicy::Insensitive);
    let modref = ModRef::compute(&program, &pta);
    let clean = pta.locs().ids().find(|&l| pta.loc_name(&program, l) == "clean0").unwrap();
    let secret =
        pta.locs().ids().find(|&l| pta.loc_name(&program, l) == "secret0").unwrap();
    let box_cls = program.class_by_name("Box").unwrap();
    let slot = program.resolve_field(box_cls, "slot").unwrap();
    let edge = HeapEdge::Field { base: clean, field: slot, target: secret };

    let mut group = c.benchmark_group("hyp3_loop_modes");
    for (name, mode) in [("infer", LoopMode::Infer), ("drop_all", LoopMode::DropAll)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &mode| {
            b.iter(|| {
                let cfg = SymexConfig::default().with_loop_mode(mode);
                let mut engine = Engine::new(&program, &pta, &modref, cfg);
                std::hint::black_box(engine.refute_edge(&edge))
            });
        });
    }
    group.finish();
}

/// Table 1 end-to-end on the two smallest apps (full pipeline timing).
fn bench_table1_small_apps(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_small_apps");
    group.sample_size(10);
    for app in [apps::suite::droidlife(), apps::suite::smspopup()] {
        for annotated in [false, true] {
            let id = format!("{}_{}", app.name, if annotated { "annY" } else { "annN" });
            group.bench_function(BenchmarkId::from_parameter(id), |b| {
                b.iter(|| {
                    let cfg = SymexConfig::default().with_budget(2_000);
                    std::hint::black_box(bench::run_table1_row(&app, annotated, cfg))
                });
            });
        }
    }
    group.finish();
}

/// The up-front points-to analysis alone (the "8–46 seconds" phase of §4).
fn bench_points_to(c: &mut Criterion) {
    let mut group = c.benchmark_group("points_to_analysis");
    for app in apps::suite::all_apps() {
        group.bench_function(BenchmarkId::from_parameter(app.name), |b| {
            b.iter(|| {
                std::hint::black_box(pta::analyze(
                    &app.program,
                    apps::builder::container_policy(&app),
                ))
            });
        });
    }
    group.finish();
}

/// Ablation: materialization bound 0/1/2 on the Figure 1 refutation (the
/// paper reports bound 1 suffices; bound 0 must stay sound, just weaker).
fn bench_materialization_bound(c: &mut Criterion) {
    let program = figures::fig1();
    let pta = pta::analyze(&program, ContextPolicy::Insensitive);
    let modref = ModRef::compute(&program, &pta);
    let arr0 = pta.locs().ids().find(|&l| pta.loc_name(&program, l) == "arr0").unwrap();
    let act0 = pta.locs().ids().find(|&l| pta.loc_name(&program, l) == "act0").unwrap();
    let edge = HeapEdge::Field { base: arr0, field: program.contents_field, target: act0 };
    let mut group = c.benchmark_group("ablation_materialization_bound");
    for bound in [0usize, 1, 2] {
        group.bench_with_input(BenchmarkId::from_parameter(bound), &bound, |b, &bound| {
            b.iter(|| {
                let cfg = SymexConfig { materialization_bound: bound, ..SymexConfig::default() };
                let mut engine = Engine::new(&program, &pta, &modref, cfg);
                std::hint::black_box(engine.refute_edge(&edge))
            });
        });
    }
    group.finish();
}

/// Ablation: context policies for the up-front analysis on the K9Mail
/// analog (insensitive vs container-CFA vs 1-CFA vs full 1-object).
fn bench_context_policies(c: &mut Criterion) {
    let app = apps::suite::k9mail();
    let mut group = c.benchmark_group("ablation_context_policy");
    let policies: Vec<(&str, ContextPolicy)> = vec![
        ("insensitive", ContextPolicy::Insensitive),
        ("container_cfa", apps::builder::container_policy(&app)),
        ("call_site_1cfa", ContextPolicy::CallSiteSensitive),
        ("object_1", ContextPolicy::ObjectSensitive { max_depth: 1 }),
    ];
    for (name, policy) in policies {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| std::hint::black_box(pta::analyze(&app.program, policy.clone())));
        });
    }
    group.finish();
}

/// Scalability: the annotated client end-to-end as the app grows.
fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability_mega_app");
    group.sample_size(10);
    for n in [4usize, 8, 16] {
        let app = apps::suite::mega(n);
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| {
                let cfg = SymexConfig::default().with_budget(2_000);
                std::hint::black_box(bench::run_table1_row(&app, true, cfg))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fig1_representations,
    bench_simplification,
    bench_loop_modes,
    bench_table1_small_apps,
    bench_points_to,
    bench_materialization_bound,
    bench_context_policies,
    bench_scalability,
);
criterion_main!(benches);
