//! Micro-benchmarks over the paper's experiments, run with a plain timing
//! harness (`harness = false`) so the workspace needs no external bench
//! framework.
//!
//! Each group corresponds to a table/figure; the `reproduce` binary
//! regenerates the full-format tables (with the paper's 10k budget), while
//! these benches use small budgets so iteration counts stay reasonable.
//!
//! Run with `cargo bench -p bench`. Pass a substring argument to run only
//! matching groups, e.g. `cargo bench -p bench -- loop`.

use std::time::{Duration, Instant};

use apps::figures;
use pta::{ContextPolicy, HeapEdge, ModRef};
use symex::{Engine, LoopMode, Representation, SymexConfig};

/// Times `f` adaptively: warm up once, then repeat until ~0.2s of samples
/// or 50 iterations, and report the per-iteration mean.
fn time_case(group: &str, name: &str, filter: Option<&str>, mut f: impl FnMut()) {
    if let Some(pat) = filter {
        if !group.contains(pat) && !name.contains(pat) {
            return;
        }
    }
    f(); // warm-up
    let budget = Duration::from_millis(200);
    let t0 = Instant::now();
    let mut iters = 0u32;
    while t0.elapsed() < budget && iters < 50 {
        f();
        iters += 1;
    }
    let mean = t0.elapsed() / iters.max(1);
    println!("{group}/{name:<28} {mean:>12.2?}  ({iters} iters)");
}

/// Figure 1/2: time to refute `arr0.contents -> act0` under each query
/// representation (the Table 2 contrast on the running example).
fn bench_fig1_representations(filter: Option<&str>) {
    let program = figures::fig1();
    let pta = pta::analyze(&program, ContextPolicy::Insensitive);
    let modref = ModRef::compute(&program, &pta);
    let arr0 = pta.locs().ids().find(|&l| pta.loc_name(&program, l) == "arr0").unwrap();
    let act0 = pta.locs().ids().find(|&l| pta.loc_name(&program, l) == "act0").unwrap();
    let edge = HeapEdge::Field { base: arr0, field: program.contents_field, target: act0 };

    for (name, repr) in [
        ("mixed", Representation::Mixed),
        ("fully_symbolic", Representation::FullySymbolic),
        ("fully_explicit", Representation::FullyExplicit),
    ] {
        time_case("table2_fig1_refutation", name, filter, || {
            let cfg = SymexConfig::default().with_representation(repr);
            let mut engine = Engine::new(&program, &pta, &modref, cfg);
            std::hint::black_box(engine.refute_edge(&edge));
        });
    }
}

/// Hypothesis 2: the leak client on a small app with and without query
/// simplification.
fn bench_simplification(filter: Option<&str>) {
    let app = apps::suite::standuptimer();
    for (name, simplify) in [("with", true), ("without", false)] {
        time_case("hyp2_simplification_standuptimer", name, filter, || {
            let cfg = SymexConfig::default().with_simplification(simplify).with_budget(2_000);
            std::hint::black_box(bench::run_table1_row(&app, true, cfg));
        });
    }
}

/// Hypothesis 3: loop handling on the multi-container micro benchmark.
fn bench_loop_modes(filter: Option<&str>) {
    let program = figures::multi_map();
    let pta = pta::analyze(&program, ContextPolicy::Insensitive);
    let modref = ModRef::compute(&program, &pta);
    let clean = pta.locs().ids().find(|&l| pta.loc_name(&program, l) == "clean0").unwrap();
    let secret = pta.locs().ids().find(|&l| pta.loc_name(&program, l) == "secret0").unwrap();
    let box_cls = program.class_by_name("Box").unwrap();
    let slot = program.resolve_field(box_cls, "slot").unwrap();
    let edge = HeapEdge::Field { base: clean, field: slot, target: secret };

    for (name, mode) in [("infer", LoopMode::Infer), ("drop_all", LoopMode::DropAll)] {
        time_case("hyp3_loop_modes", name, filter, || {
            let cfg = SymexConfig::default().with_loop_mode(mode);
            let mut engine = Engine::new(&program, &pta, &modref, cfg);
            std::hint::black_box(engine.refute_edge(&edge));
        });
    }
}

/// Table 1 end-to-end on the two smallest apps (full pipeline timing).
fn bench_table1_small_apps(filter: Option<&str>) {
    for app in [apps::suite::droidlife(), apps::suite::smspopup()] {
        for annotated in [false, true] {
            let id = format!("{}_{}", app.name, if annotated { "annY" } else { "annN" });
            time_case("table1_small_apps", &id, filter, || {
                let cfg = SymexConfig::default().with_budget(2_000);
                std::hint::black_box(bench::run_table1_row(&app, annotated, cfg));
            });
        }
    }
}

/// The up-front points-to analysis alone (the "8–46 seconds" phase of §4).
fn bench_points_to(filter: Option<&str>) {
    for app in apps::suite::all_apps() {
        time_case("points_to_analysis", app.name, filter, || {
            std::hint::black_box(pta::analyze(&app.program, apps::builder::container_policy(&app)));
        });
    }
}

/// Ablation: materialization bound 0/1/2 on the Figure 1 refutation (the
/// paper reports bound 1 suffices; bound 0 must stay sound, just weaker).
fn bench_materialization_bound(filter: Option<&str>) {
    let program = figures::fig1();
    let pta = pta::analyze(&program, ContextPolicy::Insensitive);
    let modref = ModRef::compute(&program, &pta);
    let arr0 = pta.locs().ids().find(|&l| pta.loc_name(&program, l) == "arr0").unwrap();
    let act0 = pta.locs().ids().find(|&l| pta.loc_name(&program, l) == "act0").unwrap();
    let edge = HeapEdge::Field { base: arr0, field: program.contents_field, target: act0 };
    for bound in [0usize, 1, 2] {
        time_case("ablation_materialization_bound", &bound.to_string(), filter, || {
            let cfg = SymexConfig { materialization_bound: bound, ..SymexConfig::default() };
            let mut engine = Engine::new(&program, &pta, &modref, cfg);
            std::hint::black_box(engine.refute_edge(&edge));
        });
    }
}

/// Ablation: context policies for the up-front analysis on the K9Mail
/// analog (insensitive vs container-CFA vs 1-CFA vs full 1-object).
fn bench_context_policies(filter: Option<&str>) {
    let app = apps::suite::k9mail();
    let policies: Vec<(&str, ContextPolicy)> = vec![
        ("insensitive", ContextPolicy::Insensitive),
        ("container_cfa", apps::builder::container_policy(&app)),
        ("call_site_1cfa", ContextPolicy::CallSiteSensitive),
        ("object_1", ContextPolicy::ObjectSensitive { max_depth: 1 }),
    ];
    for (name, policy) in policies {
        time_case("ablation_context_policy", name, filter, || {
            std::hint::black_box(pta::analyze(&app.program, policy.clone()));
        });
    }
}

/// Scalability: the annotated client end-to-end as the app grows.
fn bench_scalability(filter: Option<&str>) {
    for n in [4usize, 8, 16] {
        let app = apps::suite::mega(n);
        time_case("scalability_mega_app", &n.to_string(), filter, || {
            let cfg = SymexConfig::default().with_budget(2_000);
            std::hint::black_box(bench::run_table1_row(&app, true, cfg));
        });
    }
}

fn main() {
    // Cargo's default bench runner passes --bench; ignore harness flags and
    // treat the first non-flag argument as a name filter.
    let filter_owned = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    let filter = filter_owned.as_deref();
    bench_fig1_representations(filter);
    bench_simplification(filter);
    bench_loop_modes(filter);
    bench_table1_small_apps(filter);
    bench_points_to(filter);
    bench_materialization_bound(filter);
    bench_context_policies(filter);
    bench_scalability(filter);
}
