//! Regenerates the paper's evaluation tables.
//!
//! ```text
//! reproduce table1 [--budget N] [--apps a,b,c]   # Table 1
//! reproduce table2 [--budget N] [--apps a,b,c]   # Table 2 (fully symbolic vs mixed)
//! reproduce simplification [--budget N]          # §4 hypothesis 2
//! reproduce loops                                # §4 hypothesis 3
//! reproduce jobs [--budget N] [--apps a,b,c] [--assert-scaling]
//!                                                # --jobs scaling sweep (1, 2, all cores);
//!                                                # 1-core hosts refuse to snapshot the
//!                                                # sweep (and the gate is skipped)
//! reproduce pta [--scale N] [--assert-fewer-propagations]
//!                                                # points-to solver comparison
//! reproduce edits [--scale N] [--edits N] [--assert-edit-ratio]
//!                                                # incremental edit re-analysis vs from-scratch
//! reproduce demand [--scale N] [--assert-slice-fraction F] [--assert-no-drift]
//!                                                # demand-driven query tier vs exhaustive
//! reproduce null [--scale N] [--assert-no-drift]
//!                                                # null-dereference client vs ground truth
//! reproduce incremental [--budget N] [--apps a,b,c] [--cache-dir DIR]
//!                                                # persistent-cache cold vs warm
//! reproduce serve [--apps a,b,c] [--rounds N]    # resident daemon vs cold pipeline
//! reproduce all [--budget N]                     # everything
//!
//! snapshot options (table1 / jobs / pta / edits / demand / null / serve / all; table1 and all include the pta breakdown):
//!   --snapshot-out <path>   where to write the perf snapshot JSON
//!                           (default BENCH_<unix-time>.json)
//!   --no-snapshot           skip writing the snapshot
//! ```
//!
//! Table 1 runs additionally emit a machine-readable perf snapshot
//! (`thresher.bench_snapshot/6`) so results can be diffed across commits.
//! The `serve` mode records the daemon's request-latency quantiles
//! (p50/p99, from the `cost` blocks attached to every response) and the
//! summed per-phase cost splits into the snapshot's `serve` section.
//!
//! The `incremental` mode runs every selected app cold then warm against
//! a persistent refutation cache and prints the wall-clock comparison.
//! It is always a gate: the process exits non-zero unless every warm run
//! answers every committed edge decision from the store (`cache_hits ==
//! decisions`) with **zero** live path-program explorations and a report
//! that agrees with the cold run on every verdict and edge counter. The
//! cache directory defaults to a fresh temp directory; `--cache-dir`
//! overrides it (useful for inspecting the store afterwards).
//!
//! The `pta` mode solves every suite app plus one generated
//! `apps::scale` program (default `--scale 16`) under both points-to
//! fixpoint strategies, reading the effort counters back from serialized
//! run reports. `--assert-fewer-propagations` turns the comparison into a
//! regression gate: the process exits non-zero unless the delta solver
//! performs strictly fewer propagations than the reference on the scaled
//! corpus — the CI guard for the difference-propagation rewrite. The mode
//! also scans generator scales for the wall-time crossover point: the
//! smallest corpus where the delta solver's bookkeeping pays for itself.
//!
//! The `edits` mode replays single-statement edits (remove a statement,
//! restore it) through a resident incremental points-to analysis on every
//! suite app plus the scaled corpus, comparing each edit solve against a
//! from-scratch solve of the edited program. After **every** batch the
//! canonicalized incremental state is checked byte-for-byte against a
//! from-scratch `SolverKind::Reference` solve; any divergence fails the
//! process unconditionally. `--assert-edit-ratio` adds the perf gate:
//! edit-solve propagations on the scaled corpus must total ≤ 25% of the
//! from-scratch propagations — the CI guard for the incremental-edit
//! pipeline.
//!
//! The `demand` mode queries every global of every suite app and of the
//! generated corpus at each scale `1..=N` (default `--scale 16`) through
//! the demand-driven points-to tier, printing per-query latency
//! quantiles and slice fractions. Every answer is gated fact-by-fact
//! against the exhaustive oracle, so a non-zero `drift` column means a
//! demand traversal produced a wrong fact (the gate corrected it);
//! `--assert-no-drift` fails the process on any drift, and
//! `--assert-slice-fraction F` fails it when the worst per-query slice
//! fraction on the largest scaled corpus exceeds `F` — the CI guard that
//! demand queries stay O(query), not O(program).
//!
//! The `null` mode runs the null-dereference client over every suite app
//! and the generated null corpus at doubling scales up to `--scale N`
//! (default 16), pushing every may-null dereference site through the
//! full refutation stack. Each point reruns the client with four
//! workers and byte-compares the reports; scaled points additionally
//! pin the alarm count to the generator's ground truth. A non-zero
//! `drift` column means either check failed; `--assert-no-drift` fails
//! the process on any drift — the CI guard that the client's answers
//! are exactly right and scheduler-independent.
//!
//! Absolute times are hardware-dependent; the *shape* (who wins, by what
//! factor, where timeouts fall) is the reproduction target — see
//! EXPERIMENTS.md.

use apps::BenchApp;
use bench::{
    admissible_jobs_sweep, format_table1_row, perf_snapshot_json_full, pta_walltime_crossover,
    run_demand_bench, run_edit_bench, run_jobs_sweep, run_loop_ablation, run_null_bench,
    run_pta_bench, run_repr_comparison, run_simplification_ablation, run_table1_row,
    table1_header, DemandBenchPoint, EditBenchPoint, JobsSweepPoint, NullBenchPoint,
    PtaBenchPoint, ServeLatencyPoint, Table1Row,
};
use symex::{Representation, SymexConfig};

fn parse_budget(args: &[String]) -> u64 {
    args.iter()
        .position(|a| a == "--budget")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000)
}

fn selected_apps(args: &[String]) -> Vec<BenchApp> {
    let filter: Option<Vec<String>> = args
        .iter()
        .position(|a| a == "--apps")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.split(',').map(|s| s.to_lowercase()).collect());
    apps::suite::all_apps()
        .into_iter()
        .filter(|a| match &filter {
            Some(names) => names.iter().any(|n| a.name.to_lowercase() == *n),
            None => true,
        })
        .collect()
}

fn table1(apps: &[BenchApp], budget: u64) -> Vec<Table1Row> {
    println!("== Table 1: filtering effectiveness and computational effort ==");
    println!("{}", table1_header());
    let mut totals = [0usize; 8];
    let mut rows = Vec::new();
    for app in apps {
        for annotated in [false, true] {
            let cfg = SymexConfig::default().with_budget(budget);
            let row = run_table1_row(app, annotated, cfg);
            println!("{}", format_table1_row(&row));
            let idx = usize::from(annotated) * 4;
            totals[idx] += row.alarms;
            totals[idx + 1] += row.refuted_alarms;
            totals[idx + 2] += row.true_alarms;
            totals[idx + 3] += row.false_alarms;
            rows.push(row);
        }
    }
    println!(
        "Total  Ann?=N: alarms={} refuted={} true={} false={}",
        totals[0], totals[1], totals[2], totals[3]
    );
    println!(
        "Total  Ann?=Y: alarms={} refuted={} true={} false={}",
        totals[4], totals[5], totals[6], totals[7]
    );
    rows
}

/// Writes the perf snapshot next to the working directory (or to
/// `--snapshot-out`), named `BENCH_<unix-time>.json` by default.
#[allow(clippy::too_many_arguments)]
fn write_snapshot(
    args: &[String],
    rows: &[Table1Row],
    budget: u64,
    sweep: &[JobsSweepPoint],
    pta: &[PtaBenchPoint],
    serve: &[ServeLatencyPoint],
    edits: &[EditBenchPoint],
    demand: &[DemandBenchPoint],
    null: &[NullBenchPoint],
) {
    if (rows.is_empty()
        && pta.is_empty()
        && serve.is_empty()
        && edits.is_empty()
        && demand.is_empty()
        && null.is_empty())
        || args.iter().any(|a| a == "--no-snapshot")
    {
        return;
    }
    let unix_time_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let path = args
        .iter()
        .position(|a| a == "--snapshot-out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("BENCH_{unix_time_s}.json"));
    let payload =
        perf_snapshot_json_full(rows, unix_time_s, budget, sweep, pta, serve, edits, demand, null);
    match std::fs::write(&path, payload) {
        Ok(()) => println!("perf snapshot written to {path}"),
        Err(e) => eprintln!("warning: cannot write snapshot {path}: {e}"),
    }
}

/// Runs the `--jobs` scaling sweep (1, 2, all cores) over a full Table 1
/// pass and prints the wall-clock scaling table. With `assert_scaling`,
/// exits non-zero if the all-cores pass is slower than the sequential
/// one — except on single-core hosts, where every multi-threaded point
/// measures scheduler contention rather than scaling: there the gate is
/// skipped and the sweep points are *dropped* (via
/// [`admissible_jobs_sweep`]), so the snapshot never grows a
/// `jobs_sweep` section that would poison later cross-commit diffs.
/// The Table 1 rows are still returned — they are jobs-invariant.
fn jobs_sweep(
    apps: &[BenchApp],
    budget: u64,
    assert_scaling: bool,
) -> (Vec<JobsSweepPoint>, Vec<Table1Row>) {
    // Always include a 4-thread point so snapshots are comparable across
    // hosts, even when the sweep host has fewer cores.
    let cores = thresher::default_jobs();
    let mut jobs_list = vec![1usize, 2, 4, cores];
    jobs_list.sort_unstable();
    jobs_list.dedup();
    println!("== --jobs scaling: full Table 1 pass per thread count ({cores} core(s)) ==");
    let (points, rows) = run_jobs_sweep(apps, budget, &jobs_list);
    println!("{:>6} {:>12} {:>12}", "jobs", "wall T(s)", "speedup");
    let baseline = points.iter().find(|p| p.jobs == 1).map_or(points[0].wall, |p| p.wall);
    for p in &points {
        println!("{:>6} {:>12.2} {:>11.2}x", p.jobs, p.wall.as_secs_f64(), p.speedup_vs(baseline));
    }
    if cores == 1 {
        eprintln!(
            "WARNING: this host reports a single CPU. Every jobs>1 point above measures \
             scheduler contention, NOT parallel scaling; the sweep will NOT be \
             snapshotted (no jobs_sweep section is written). Scaling assertion {}.",
            if assert_scaling { "SKIPPED" } else { "not applicable" },
        );
    } else if assert_scaling {
        let top = points.iter().max_by_key(|p| p.jobs).expect("non-empty sweep");
        if top.speedup_vs(baseline) < 1.0 {
            eprintln!(
                "FAIL: jobs={} pass was slower than the sequential pass ({:.2}s vs {:.2}s)",
                top.jobs,
                top.wall.as_secs_f64(),
                baseline.as_secs_f64(),
            );
            std::process::exit(1);
        }
    }
    (admissible_jobs_sweep(cores, points), rows)
}

/// Runs the points-to solver comparison and prints it as a table. With
/// `assert_gate`, exits non-zero unless the delta solver performed
/// strictly fewer propagations than the reference on the scaled corpus.
fn pta_bench(scale: usize, assert_gate: bool) -> Vec<PtaBenchPoint> {
    println!("== points-to solver: delta propagation vs full-set reference (scale {scale}) ==");
    println!(
        "{:<14} {:>10} {:>10} {:>8} {:>12} {:>12} {:>8}",
        "Program", "solver", "T(s)", "nodes", "props", "deltas", "sccs"
    );
    let points = run_pta_bench(scale);
    for p in &points {
        println!(
            "{:<14} {:>10} {:>10.4} {:>8} {:>12} {:>12} {:>8}",
            p.program,
            p.solver.name(),
            p.solve_s,
            p.nodes,
            p.propagations,
            p.deltas_pushed,
            p.sccs_collapsed,
        );
    }
    let scaled_name = format!("scaled-{scale}");
    let find = |solver: pta::SolverKind| {
        points.iter().find(|p| p.program == scaled_name && p.solver == solver)
    };
    if let (Some(d), Some(r)) = (find(pta::SolverKind::Delta), find(pta::SolverKind::Reference)) {
        let pct = 100.0 * d.propagations as f64 / (r.propagations as f64).max(1.0);
        println!(
            "scaled corpus: delta {} vs reference {} propagations ({pct:.1}% of reference)",
            d.propagations, r.propagations
        );
        if assert_gate && d.propagations >= r.propagations {
            eprintln!(
                "FAIL: delta solver did not perform fewer propagations than the reference \
                 ({} >= {})",
                d.propagations, r.propagations
            );
            std::process::exit(1);
        }
    }

    // Wall-time crossover scan: propagation counts favour the delta
    // solver everywhere, but its bookkeeping has a constant cost — find
    // the corpus size where wall time starts favouring it too.
    let scales: Vec<usize> =
        [1, 2, 4, 8, 16, 32].iter().copied().filter(|s| *s <= scale.max(16)).collect();
    let (samples, crossover) = pta_walltime_crossover(&scales);
    println!("wall-time crossover scan (best of 3 per point):");
    println!("{:>8} {:>12} {:>14}", "scale", "delta (us)", "reference (us)");
    for s in &samples {
        println!("{:>8} {:>12.0} {:>14.0}", s.scale, s.delta_s * 1e6, s.reference_s * 1e6);
    }
    match crossover {
        Some(s) => println!("wall-time crossover: delta overtakes reference at scale {s}"),
        None => println!(
            "wall-time crossover: not reached up to scale {} (delta wins on propagations only)",
            scales.last().copied().unwrap_or(0)
        ),
    }
    points
}

/// Runs the incremental edit benchmark and prints it as a table. The
/// reference oracle is always a gate (any divergence exits non-zero);
/// with `assert_ratio`, edit-solve propagations on the scaled corpus must
/// additionally total ≤ 25% of the from-scratch propagations.
fn edits_bench(scale: usize, max_edits: usize, assert_ratio: bool) -> Vec<EditBenchPoint> {
    println!(
        "== incremental edits: single-statement edit re-analysis vs from-scratch \
         (scale {scale}, {max_edits} batches/program) =="
    );
    println!(
        "{:<14} {:>6} {:>10} {:>12} {:>8} {:>8} {:>9} {:>9} {:>12} {:>7}",
        "Program",
        "edits",
        "rebuilds",
        "edit props",
        "scratch",
        "ratio",
        "p50(us)",
        "p99(us)",
        "scr p50(us)",
        "oracle"
    );
    let points = run_edit_bench(scale, max_edits);
    let mut oracle_ok = true;
    for p in &points {
        oracle_ok &= p.oracle_ok;
        println!(
            "{:<14} {:>6} {:>10} {:>12} {:>8} {:>7.1}% {:>9} {:>9} {:>12} {:>7}",
            p.program,
            p.edits,
            p.rebuilds,
            p.edit_propagations,
            p.scratch_propagations,
            100.0 * p.propagation_ratio(),
            p.p50_us,
            p.p99_us,
            p.scratch_p50_us,
            if p.oracle_ok { "ok" } else { "FAIL" },
        );
    }
    if !oracle_ok {
        eprintln!(
            "FAIL: incremental state diverged from a from-scratch reference solve after an edit"
        );
        std::process::exit(1);
    }
    let scaled_name = format!("scaled-{scale}");
    if let Some(p) = points.iter().find(|p| p.program == scaled_name) {
        let pct = 100.0 * p.propagation_ratio();
        println!(
            "scaled corpus: edit-solve {} vs from-scratch {} propagations ({pct:.1}% of scratch)",
            p.edit_propagations, p.scratch_propagations
        );
        if assert_ratio && p.propagation_ratio() > 0.25 {
            eprintln!(
                "FAIL: edit-solve propagations exceeded 25% of from-scratch on the scaled \
                 corpus ({pct:.1}%)"
            );
            std::process::exit(1);
        }
    }
    points
}

/// Runs the demand-tier benchmark and prints it as a table. With
/// `assert_no_drift`, any oracle-gate correction exits non-zero; with
/// `max_fraction`, the worst per-query slice fraction on the largest
/// scaled corpus must stay within the bound.
fn demand_bench(
    scale: usize,
    max_fraction: Option<f64>,
    assert_no_drift: bool,
) -> Vec<DemandBenchPoint> {
    println!("== demand-driven points-to: per-query slices vs exhaustive (scales 1..={scale}) ==");
    println!(
        "{:<14} {:>7} {:>9} {:>9} {:>9} {:>10} {:>10} {:>9} {:>6} {:>9}",
        "Program",
        "queries",
        "p50(us)",
        "p99(us)",
        "max(us)",
        "mean frac",
        "max frac",
        "fallback",
        "drift",
        "nodes"
    );
    let points = run_demand_bench(scale);
    let mut drift_total = 0;
    for p in &points {
        drift_total += p.drift;
        println!(
            "{:<14} {:>7} {:>9} {:>9} {:>9} {:>9.1}% {:>9.1}% {:>9} {:>6} {:>9}",
            p.program,
            p.queries,
            p.p50_us,
            p.p99_us,
            p.max_us,
            100.0 * p.mean_slice_fraction,
            100.0 * p.max_slice_fraction,
            p.fallbacks,
            p.drift,
            p.nodes_total,
        );
    }
    if drift_total > 0 {
        println!("drift: {drift_total} demand facts were corrected by the oracle gate");
        if assert_no_drift {
            eprintln!("FAIL: demand answers drifted from the exhaustive oracle");
            std::process::exit(1);
        }
    } else {
        println!("drift: 0 (every demand answer byte-identical to the exhaustive result)");
    }
    let scaled_name = format!("scaled-{scale}");
    if let Some(p) = points.iter().find(|p| p.program == scaled_name) {
        println!(
            "scaled corpus: worst query touched {:.1}% of {} copy-graph nodes",
            100.0 * p.max_slice_fraction,
            p.nodes_total
        );
        if let Some(bound) = max_fraction {
            if p.max_slice_fraction > bound {
                eprintln!(
                    "FAIL: worst demand slice fraction on {scaled_name} exceeded {:.0}% \
                     ({:.1}%)",
                    100.0 * bound,
                    100.0 * p.max_slice_fraction
                );
                std::process::exit(1);
            }
        }
    }
    points
}

/// Runs the null-dereference client benchmark and prints it as a table.
/// With `assert_no_drift`, any ground-truth mismatch or jobs-4 report
/// divergence exits non-zero.
fn null_bench(scale: usize, assert_no_drift: bool) -> Vec<NullBenchPoint> {
    println!("== null client: full refutation stack per may-null dereference (scale {scale}) ==");
    println!(
        "{:<16} {:>6} {:>8} {:>7} {:>6} {:>8} {:>7} {:>6} {:>10}",
        "Program", "sites", "refuted", "alarms", "want", "ref.edg", "budget", "drift", "T(us)"
    );
    let points = run_null_bench(scale);
    let mut drift_total = 0;
    for p in &points {
        drift_total += p.drift;
        println!(
            "{:<16} {:>6} {:>8} {:>7} {:>6} {:>8} {:>7} {:>6} {:>10}",
            p.program,
            p.candidate_sites,
            p.refuted_sites,
            p.alarms,
            p.expected_alarms.map_or_else(|| "-".to_owned(), |e| e.to_string()),
            p.edges_refuted,
            p.edge_timeouts,
            p.drift,
            p.time_us,
        );
    }
    if drift_total > 0 {
        println!(
            "drift: {drift_total} point(s) missed ground truth or answered \
             differently under --jobs 4"
        );
        if assert_no_drift {
            eprintln!("FAIL: null-client answers drifted");
            std::process::exit(1);
        }
    } else {
        println!(
            "drift: 0 (every report byte-identical across schedulers, every scaled \
             alarm count exactly the generator's ground truth)"
        );
    }
    points
}

/// Runs the persistent-cache cold/warm comparison and gate over every
/// selected app. Each app gets its own subdirectory of `root` so a stale
/// store can never warm another app's cold run.
fn incremental(apps: &[BenchApp], budget: u64, root: &std::path::Path) -> bool {
    println!("== incremental: persistent refutation cache, cold vs warm ==");
    println!(
        "{:<14} {:>10} {:>10} {:>9} {:>10} {:>6} {:>7} {:>11} {:>6}",
        "Benchmark",
        "cold T(s)",
        "warm T(s)",
        "speedup",
        "decisions",
        "hits",
        "misses",
        "fresh paths",
        "gate"
    );
    let mut ok = true;
    for app in apps {
        let dir = root.join(app.name);
        // A fresh directory per invocation: the first run must be cold.
        if dir.exists() {
            if let Err(e) = std::fs::remove_dir_all(&dir) {
                eprintln!("warning: cannot clear {}: {e}", dir.display());
            }
        }
        let cfg = SymexConfig::default().with_budget(budget);
        let p = bench::run_incremental(app, &dir, cfg);
        let pure = p.warm_is_pure();
        ok &= pure;
        println!(
            "{:<14} {:>10.3} {:>10.3} {:>8.1}x {:>10} {:>6} {:>7} {:>11} {:>6}",
            p.name,
            p.cold.as_secs_f64(),
            p.warm.as_secs_f64(),
            p.speedup(),
            p.decisions,
            p.warm_hits,
            p.warm_misses,
            p.warm_fresh_paths,
            if pure { "ok" } else { "FAIL" },
        );
        if !pure {
            eprintln!(
                "FAIL: {}: warm run was not served purely from the cache \
                 (hits={} misses={} invalidated={} fresh_paths={} decisions={} agree={})",
                p.name,
                p.warm_hits,
                p.warm_misses,
                p.warm_invalidated,
                p.warm_fresh_paths,
                p.decisions,
                p.reports_agree,
            );
        }
    }
    ok
}

/// Measures what the resident daemon buys: the same load + leak-analysis
/// script run against a *fresh* in-process daemon every round (cold —
/// parse, points-to, and mod/ref paid per round) versus one daemon that
/// loads each program once and answers `analyze` from residency. Both
/// sides run the identical serve code path with identical budgets, so
/// the comparison isolates residency itself; the gate fails the process
/// if any request errors or any resident answer drifts from its cold
/// counterpart.
fn serve_bench(apps: &[BenchApp], rounds: usize) -> (bool, Vec<ServeLatencyPoint>) {
    use obs::json::{parse as parse_json, Value};
    use thresher::serve::{Daemon, ServeConfig};

    println!("== serve: resident daemon vs cold per-request pipeline ({rounds} round(s)) ==");
    println!(
        "{:<14} {:>10} {:>12} {:>9} {:>8} {:>9} {:>9} {:>9}",
        "Benchmark",
        "cold T(s)",
        "resident T(s)",
        "speedup",
        "alarms",
        "refuted",
        "p50(us)",
        "p99(us)"
    );
    let config = || ServeConfig {
        workers: 1,
        jobs: 1,
        queue_cap: 4096,
        rate_per_sec: 1e9,
        burst: 1e9,
        ..ServeConfig::default()
    };
    let request = |id: u64, method: &str, params: Vec<(String, Value)>| {
        Value::Obj(vec![
            ("id".to_owned(), Value::uint(id)),
            ("method".to_owned(), Value::str(method)),
            ("params".to_owned(), Value::Obj(params)),
        ])
        .to_json()
    };
    let analyze_body = |line: &str| -> Option<(u64, u64)> {
        let ok = parse_json(line).ok()?.get("ok").cloned()?;
        Some((ok.get("num_alarms")?.as_u64()?, ok.get("num_refuted")?.as_u64()?))
    };
    // (wall, parse, pta, symex, cache) out of an ok response's cost block.
    let cost_sample = |line: &str| -> Option<(u64, u64, u64, u64, u64)> {
        let ok = parse_json(line).ok()?.get("ok").cloned()?;
        let cost = ok.get("cost")?.clone();
        let phases = cost.get("phases")?.clone();
        let p = |k: &str| phases.get(k).and_then(Value::as_u64).unwrap_or(0);
        Some((
            cost.get("wall_us")?.as_u64()?,
            p("parse_us"),
            p("pta_us"),
            p("symex_us"),
            p("cache_us"),
        ))
    };

    let mut all_ok = true;
    let mut points = Vec::new();
    for app in apps {
        let source = tir::print_program(&app.program);
        let load = request(
            1,
            "load_program",
            vec![
                ("name".to_owned(), Value::str(app.name)),
                ("source".to_owned(), Value::str(source)),
            ],
        );
        let analyze = request(2, "analyze", vec![("program".to_owned(), Value::str(app.name))]);

        // Cold: a fresh daemon per round pays parse + points-to each time.
        let cold_script = format!("{load}\n{analyze}\n");
        let t0 = std::time::Instant::now();
        let mut cold_answer = None;
        for _ in 0..rounds {
            let (lines, summary) = Daemon::new(config()).run_script(&cold_script);
            let answer = lines.iter().find_map(|l| analyze_body(l));
            if answer.is_none() {
                for l in &lines {
                    eprintln!("{}: unexpected response: {l}", app.name);
                }
            }
            all_ok &= summary.completed == 2 && answer.is_some();
            cold_answer = answer;
        }
        let cold = t0.elapsed();

        // Resident: one daemon, one load, `rounds` analyses from residency.
        let mut script = format!("{load}\n");
        for _ in 0..rounds {
            script.push_str(&analyze);
            script.push('\n');
        }
        let t1 = std::time::Instant::now();
        let (lines, summary) = Daemon::new(config()).run_script(&script);
        let resident = t1.elapsed();
        let answers: Vec<_> = lines.iter().filter_map(|l| analyze_body(l)).collect();
        let agree = answers.len() == rounds && answers.iter().all(|a| Some(*a) == cold_answer);
        all_ok &= summary.completed == 1 + rounds as u64 && agree;

        // Latency quantiles + phase splits of the resident analyses, from
        // the cost blocks the daemon attaches to every response (the load
        // is excluded: it is paid once, not per request).
        let samples: Vec<_> = lines
            .iter()
            .filter(|l| {
                parse_json(l).ok().and_then(|v| v.get("id").and_then(Value::as_u64)) != Some(1)
            })
            .filter_map(|l| cost_sample(l))
            .collect();
        all_ok &= samples.len() == rounds;
        let point = ServeLatencyPoint::from_samples(app.name, &samples);

        let (alarms, refuted) = cold_answer.unwrap_or((0, 0));
        println!(
            "{:<14} {:>10.3} {:>12.3} {:>8.2}x {:>8} {:>9} {:>9} {:>9}{}",
            app.name,
            cold.as_secs_f64(),
            resident.as_secs_f64(),
            cold.as_secs_f64() / resident.as_secs_f64().max(1e-9),
            alarms,
            refuted,
            point.p50_us,
            point.p99_us,
            if agree { "" } else { "  ANSWER DRIFT" },
        );
        points.push(point);
    }
    if !all_ok {
        eprintln!("FAIL: a serve request errored or a resident answer drifted from cold");
    }
    (all_ok, points)
}

fn table2(apps: &[BenchApp], budget: u64) {
    println!("== Table 2: fully symbolic representation vs mixed ==");
    println!(
        "{:<14} {:^4} {:>12} {:>12} {:>10} {:>8} {:>14}",
        "Benchmark", "Ann?", "mixed T(s)", "symb T(s)", "slowdown", "TO(+)", "refuted m/s"
    );
    for app in apps {
        for annotated in [false, true] {
            let cfg = SymexConfig::default().with_budget(budget);
            let cmp = run_repr_comparison(app, annotated, Representation::FullySymbolic, cfg);
            println!(
                "{:<14} {:^4} {:>12.2} {:>12.2} {:>9.1}X {:>+8} {:>7}/{}",
                cmp.name,
                if annotated { "Y" } else { "N" },
                cmp.mixed_time.as_secs_f64(),
                cmp.other_time.as_secs_f64(),
                cmp.slowdown(),
                cmp.added_timeouts(),
                cmp.mixed_refuted,
                cmp.other_refuted,
            );
        }
    }
}

fn simplification(apps: &[BenchApp], budget: u64) {
    println!("== Hypothesis 2: disabling query simplification (Ann?=Y) ==");
    println!(
        "{:<14} {:>12} {:>12} {:>10} {:>10}",
        "Benchmark", "with T(s)", "without T(s)", "slowdown", "TO(+)"
    );
    for app in apps {
        let cfg = SymexConfig::default().with_budget(budget);
        let abl = run_simplification_ablation(app, cfg);
        println!(
            "{:<14} {:>12.2} {:>12.2} {:>9.1}X {:>+10}",
            abl.name,
            abl.with_time.as_secs_f64(),
            abl.without_time.as_secs_f64(),
            abl.slowdown(),
            abl.without_timeouts as isize - abl.with_timeouts as isize,
        );
    }
}

fn stats(apps: &[BenchApp]) {
    println!("== Refutation-reason breakdown (Ann?=Y, §3.2's three tools) ==");
    println!(
        "{:<14} {:>10} {:>10} {:>8} {:>10} {:>8}",
        "Benchmark", "fromEmpty", "separation", "pure", "allocation", "entry"
    );
    for app in apps {
        let b = bench::run_reason_breakdown(app, true);
        println!(
            "{:<14} {:>10} {:>10} {:>8} {:>10} {:>8}",
            b.name, b.empty_region, b.separation, b.pure, b.allocation, b.entry
        );
    }
}

fn loops() {
    println!("== Hypothesis 3: loop invariant inference vs drop-all ==");
    let abl = run_loop_ablation();
    println!(
        "multi-container micro benchmark: full inference refutes CLEAN~>secret0: {}",
        abl.infer_refutes
    );
    println!(
        "multi-container micro benchmark: drop-all refutes CLEAN~>secret0:      {}",
        abl.drop_all_refutes
    );
    println!(
        "=> {}",
        if abl.infer_refutes && !abl.drop_all_refutes {
            "CONFIRMS hypothesis 3: inference is required to distinguish containers"
        } else {
            "UNEXPECTED: see EXPERIMENTS.md"
        }
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("all");
    let budget = parse_budget(&args);
    let apps = selected_apps(&args);
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    match mode {
        "table1" => {
            let rows = table1(&apps, budget);
            println!();
            let points = pta_bench(scale, false);
            write_snapshot(&args, &rows, budget, &[], &points, &[], &[], &[], &[]);
        }
        "table2" => table2(&apps, budget),
        "simplification" => simplification(&apps, budget),
        "stats" => stats(&apps),
        "loops" => loops(),
        "jobs" => {
            let gate = args.iter().any(|a| a == "--assert-scaling");
            let (points, rows) = jobs_sweep(&apps, budget, gate);
            write_snapshot(&args, &rows, budget, &points, &[], &[], &[], &[], &[]);
        }
        "serve" => {
            let rounds = args
                .iter()
                .position(|a| a == "--rounds")
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse().ok())
                .unwrap_or(3);
            let (ok, points) = serve_bench(&apps, rounds);
            write_snapshot(&args, &[], budget, &[], &[], &points, &[], &[], &[]);
            if !ok {
                std::process::exit(1);
            }
        }
        "pta" => {
            let gate = args.iter().any(|a| a == "--assert-fewer-propagations");
            let points = pta_bench(scale, gate);
            write_snapshot(&args, &[], budget, &[], &points, &[], &[], &[], &[]);
        }
        "edits" => {
            let max_edits = args
                .iter()
                .position(|a| a == "--edits")
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse().ok())
                .unwrap_or(16);
            let gate = args.iter().any(|a| a == "--assert-edit-ratio");
            let points = edits_bench(scale, max_edits, gate);
            write_snapshot(&args, &[], budget, &[], &[], &[], &points, &[], &[]);
        }
        "demand" => {
            let max_fraction = args
                .iter()
                .position(|a| a == "--assert-slice-fraction")
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse().ok());
            let no_drift = args.iter().any(|a| a == "--assert-no-drift");
            let points = demand_bench(scale, max_fraction, no_drift);
            write_snapshot(&args, &[], budget, &[], &[], &[], &[], &points, &[]);
        }
        "null" => {
            let no_drift = args.iter().any(|a| a == "--assert-no-drift");
            let points = null_bench(scale, no_drift);
            write_snapshot(&args, &[], budget, &[], &[], &[], &[], &[], &points);
        }
        "incremental" => {
            let root = args
                .iter()
                .position(|a| a == "--cache-dir")
                .and_then(|i| args.get(i + 1))
                .map(std::path::PathBuf::from)
                .unwrap_or_else(|| {
                    std::env::temp_dir()
                        .join(format!("thresher-incremental-{}", std::process::id()))
                });
            if !incremental(&apps, budget, &root) {
                std::process::exit(1);
            }
        }
        "all" => {
            let rows = table1(&apps, budget);
            println!();
            table2(&apps, budget);
            println!();
            simplification(&apps, budget);
            println!();
            stats(&apps);
            println!();
            loops();
            println!();
            let points = pta_bench(scale, false);
            write_snapshot(&args, &rows, budget, &[], &points, &[], &[], &[], &[]);
        }
        other => {
            eprintln!(
                "unknown mode {other}; use \
                 table1|table2|simplification|stats|loops|jobs|pta|edits|demand|null|incremental|serve|all"
            );
            std::process::exit(2);
        }
    }
}
