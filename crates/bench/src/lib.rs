//! # bench — experiment drivers regenerating the paper's tables
//!
//! The `reproduce` binary prints each table in the paper's format; this
//! library holds the shared measurement drivers so the Criterion benches
//! and the binary agree on methodology.
//!
//! | Experiment | Paper artifact | Driver |
//! |---|---|---|
//! | Filtering effectiveness & effort | Table 1 | [`run_table1_row`] |
//! | Mixed vs fully symbolic | Table 2 | [`run_repr_comparison`] |
//! | Query simplification ablation | §4 hypothesis 2 | [`run_simplification_ablation`] |
//! | Loop invariant ablation | §4 hypothesis 3 | [`run_loop_ablation`] |

#![warn(missing_docs)]

use std::path::Path;
use std::time::{Duration, Instant};

use android::{paper_annotations, ActivityLeakChecker};
use apps::{builder, BenchApp};
use symex::{CacheMode, LoopMode, Representation, SymexConfig};
use thresher::Thresher;

/// One measured Table 1 row.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Program size in IR commands (the `CGB` analogue).
    pub size_cmds: usize,
    /// Annotated configuration?
    pub annotated: bool,
    /// `Alrms`: alarms reported by the flow-insensitive analysis.
    pub alarms: usize,
    /// `RefA`: alarms refuted.
    pub refuted_alarms: usize,
    /// `TruA`: surviving alarms on ground-truth leak fields.
    pub true_alarms: usize,
    /// `FalA`: surviving alarms on non-leak fields (false positives kept).
    pub false_alarms: usize,
    /// `Flds`: distinct fields with alarms.
    pub fields: usize,
    /// `RefFlds`: fields fully refuted.
    pub refuted_fields: usize,
    /// `RefEdg`: edges refuted.
    pub edges_refuted: usize,
    /// `WitEdg`: edges witnessed.
    pub edges_witnessed: usize,
    /// `TO`: edge timeouts.
    pub timeouts: usize,
    /// Abort provenance (`timeouts` broken down by reason).
    pub aborts: symex::AbortCounts,
    /// Degraded refutation retries performed.
    pub retries: usize,
    /// Edges decided only by a coarsened retry.
    pub degraded_decisions: usize,
    /// `T(s)`: symbolic-execution wall time.
    pub time: Duration,
}

/// Runs the leak client over `app` in one annotation configuration
/// (sequential refutation; see [`run_table1_row_with_jobs`]).
pub fn run_table1_row(app: &BenchApp, annotated: bool, config: SymexConfig) -> Table1Row {
    run_table1_row_with_jobs(app, annotated, config, 1)
}

/// [`run_table1_row`] with an explicit refutation thread count. Every
/// counter in the returned row is identical for every `jobs` value; only
/// the wall clock changes.
pub fn run_table1_row_with_jobs(
    app: &BenchApp,
    annotated: bool,
    config: SymexConfig,
    jobs: usize,
) -> Table1Row {
    let mut checker = ActivityLeakChecker::new(&app.program)
        .with_policy(builder::container_policy(app))
        .with_config(config)
        .with_jobs(jobs);
    if annotated {
        checker = checker.with_annotations(paper_annotations(&app.lib));
    }
    let report = checker.check();
    let mut true_alarms = 0;
    let mut false_alarms = 0;
    for (alarm, result) in &report.alarms {
        if result.is_refuted() {
            continue;
        }
        let field = &app.program.global(alarm.field).name;
        if app.true_leak_fields.contains(field) {
            true_alarms += 1;
        } else {
            false_alarms += 1;
        }
    }
    Table1Row {
        name: app.name,
        size_cmds: app.program.num_cmds(),
        annotated,
        alarms: report.num_alarms(),
        refuted_alarms: report.num_refuted(),
        true_alarms,
        false_alarms,
        fields: report.num_fields(),
        refuted_fields: report.num_refuted_fields(),
        edges_refuted: report.stats.edges_refuted,
        edges_witnessed: report.stats.edges_witnessed,
        timeouts: report.stats.edge_timeouts,
        aborts: report.stats.aborts.clone(),
        retries: report.stats.retries,
        degraded_decisions: report.stats.degraded_decisions,
        time: report.stats.symex_time,
    }
}

/// A representation-comparison measurement (one Table 2 cell pair).
#[derive(Clone, Debug)]
pub struct ReprComparison {
    /// Benchmark name.
    pub name: &'static str,
    /// Annotated configuration?
    pub annotated: bool,
    /// Mixed-representation time.
    pub mixed_time: Duration,
    /// Mixed-representation edge timeouts.
    pub mixed_timeouts: usize,
    /// Comparison-representation time.
    pub other_time: Duration,
    /// Comparison-representation edge timeouts.
    pub other_timeouts: usize,
    /// Alarms refuted under mixed (precision check).
    pub mixed_refuted: usize,
    /// Alarms refuted under the comparison representation.
    pub other_refuted: usize,
}

impl ReprComparison {
    /// The slowdown factor `other / mixed`.
    pub fn slowdown(&self) -> f64 {
        let m = self.mixed_time.as_secs_f64().max(1e-9);
        self.other_time.as_secs_f64() / m
    }

    /// Additional timeouts relative to mixed.
    pub fn added_timeouts(&self) -> isize {
        self.other_timeouts as isize - self.mixed_timeouts as isize
    }
}

/// Compares the mixed representation against `other` on one app (Table 2
/// uses [`Representation::FullySymbolic`]).
pub fn run_repr_comparison(
    app: &BenchApp,
    annotated: bool,
    other: Representation,
    base_config: SymexConfig,
) -> ReprComparison {
    let run = |repr: Representation| {
        let cfg = base_config.clone().with_representation(repr);
        let t0 = Instant::now();
        let row = run_table1_row(app, annotated, cfg);
        (t0.elapsed(), row)
    };
    let (mixed_time, mixed_row) = run(Representation::Mixed);
    let (other_time, other_row) = run(other);
    ReprComparison {
        name: app.name,
        annotated,
        mixed_time,
        mixed_timeouts: mixed_row.timeouts,
        other_time,
        other_timeouts: other_row.timeouts,
        mixed_refuted: mixed_row.refuted_alarms,
        other_refuted: other_row.refuted_alarms,
    }
}

/// A simplification-ablation measurement (§4 hypothesis 2).
#[derive(Clone, Debug)]
pub struct SimplificationAblation {
    /// Benchmark name.
    pub name: &'static str,
    /// Time with query simplification (the default).
    pub with_time: Duration,
    /// Time without simplification.
    pub without_time: Duration,
    /// Timeouts with simplification.
    pub with_timeouts: usize,
    /// Timeouts without simplification (the paper's out-of-memory case
    /// shows up as budget exhaustion here).
    pub without_timeouts: usize,
}

impl SimplificationAblation {
    /// Slowdown factor of disabling simplification.
    pub fn slowdown(&self) -> f64 {
        self.without_time.as_secs_f64() / self.with_time.as_secs_f64().max(1e-9)
    }
}

/// Measures the simplification ablation on one (annotated) app.
pub fn run_simplification_ablation(
    app: &BenchApp,
    base_config: SymexConfig,
) -> SimplificationAblation {
    let t0 = Instant::now();
    let with_row = run_table1_row(app, true, base_config.clone().with_simplification(true));
    let with_time = t0.elapsed();
    let t1 = Instant::now();
    let without_row = run_table1_row(app, true, base_config.with_simplification(false));
    let without_time = t1.elapsed();
    SimplificationAblation {
        name: app.name,
        with_time,
        without_time,
        with_timeouts: with_row.timeouts,
        without_timeouts: without_row.timeouts,
    }
}

/// A loop-handling ablation result (§4 hypothesis 3) on the multi-container
/// micro benchmark.
#[derive(Clone, Debug)]
pub struct LoopAblation {
    /// Did full inference refute the clean-container query?
    pub infer_refutes: bool,
    /// Did the drop-all ablation refute it (expected: no)?
    pub drop_all_refutes: bool,
}

/// Runs the loop ablation on the multi-container micro benchmark.
pub fn run_loop_ablation() -> LoopAblation {
    let program = apps::figures::multi_map();
    let check = |mode: LoopMode| {
        let t = Thresher::with_setup(
            &program,
            pta::ContextPolicy::Insensitive,
            SymexConfig::default().with_loop_mode(mode),
        );
        !t.query_reachable("CLEAN", "secret0").is_reachable()
    };
    LoopAblation {
        infer_refutes: check(LoopMode::Infer),
        drop_all_refutes: check(LoopMode::DropAll),
    }
}

/// Per-app refutation-reason breakdown (diagnostic companion to Table 1:
/// which of the three refutation tools of §3.2 — separation, instance
/// constraints, pure constraints — fired).
#[derive(Clone, Debug)]
pub struct ReasonBreakdown {
    /// Benchmark name.
    pub name: &'static str,
    /// Refutations from empty `from` regions (instance constraints).
    pub empty_region: u64,
    /// Refutations from separation.
    pub separation: u64,
    /// Refutations from pure-constraint unsatisfiability.
    pub pure: u64,
    /// Refutations at allocation sites.
    pub allocation: u64,
    /// Refutations at the program entry.
    pub entry: u64,
}

/// Collects refutation reasons by running the client and reading the
/// engine counters.
pub fn run_reason_breakdown(app: &BenchApp, annotated: bool) -> ReasonBreakdown {
    let opts = if annotated {
        android::to_pta_options(&paper_annotations(&app.lib))
    } else {
        pta::PtaOptions::default()
    };
    let pta_result = pta::analyze_with(&app.program, builder::container_policy(app), &opts);
    let modref = pta::ModRef::compute(&app.program, &pta_result);
    let mut client =
        android::LeakClient::new(&app.program, &pta_result, &modref, SymexConfig::default());
    let alarms = client.find_alarms();
    let mut stats = android::ClientStats::default();
    for alarm in alarms {
        let _ = client.triage(alarm, &mut stats);
    }
    let r = &client.engine_stats().refutations;
    ReasonBreakdown {
        name: app.name,
        empty_region: r.empty_region,
        separation: r.separation,
        pure: r.pure,
        allocation: r.allocation,
        entry: r.entry,
    }
}

/// One point of a `--jobs` scaling sweep: the wall-clock time of a full
/// Table 1 pass (all apps, both annotation configurations) at one
/// refutation thread count.
#[derive(Clone, Debug)]
pub struct JobsSweepPoint {
    /// Refutation worker threads used.
    pub jobs: usize,
    /// End-to-end wall-clock time of the pass.
    pub wall: Duration,
}

impl JobsSweepPoint {
    /// Speedup of this point relative to `baseline` (the `jobs = 1` wall
    /// clock).
    pub fn speedup_vs(&self, baseline: Duration) -> f64 {
        baseline.as_secs_f64() / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Runs a full Table 1 pass once per entry of `jobs_list`, wall-clocking
/// each pass. Returns the sweep points plus the rows of the first pass
/// (the counters are identical across passes — the scheduler is
/// deterministic — so one copy suffices for the snapshot).
pub fn run_jobs_sweep(
    apps: &[BenchApp],
    budget: u64,
    jobs_list: &[usize],
) -> (Vec<JobsSweepPoint>, Vec<Table1Row>) {
    let mut points = Vec::new();
    let mut first_rows = Vec::new();
    for &jobs in jobs_list {
        let t0 = Instant::now();
        let mut rows = Vec::new();
        for app in apps {
            for annotated in [false, true] {
                let cfg = SymexConfig::default().with_budget(budget);
                rows.push(run_table1_row_with_jobs(app, annotated, cfg, jobs));
            }
        }
        points.push(JobsSweepPoint { jobs, wall: t0.elapsed() });
        if first_rows.is_empty() {
            first_rows = rows;
        }
    }
    (points, first_rows)
}

/// One measured point of the points-to solver benchmark: one program
/// under one fixpoint strategy. Effort counters are read back from the
/// serialized run report (not from in-process state), so the numbers the
/// snapshot records are exactly the numbers `--diff-reports` compares.
#[derive(Clone, Debug)]
pub struct PtaBenchPoint {
    /// Program name (an app, or `scaled-N` for the generated corpus).
    pub program: String,
    /// Generator scale, when the program came from [`apps::scale`].
    pub scale: Option<usize>,
    /// Fixpoint strategy that produced this point.
    pub solver: pta::SolverKind,
    /// Solve wall time in seconds.
    pub solve_s: f64,
    /// `pta_propagations` from the run report.
    pub propagations: u64,
    /// `pta_deltas_pushed` from the run report.
    pub deltas_pushed: u64,
    /// `pta_sccs_collapsed` from the run report.
    pub sccs_collapsed: u64,
    /// `pta_nodes` from the run report (solver-independent).
    pub nodes: u64,
}

/// Solves `program` once with `solver` under `rec`, timing the solve and
/// reading the effort counters back out of a serialized run report.
fn measure_pta(
    rec: &obs::MemRecorder,
    name: &str,
    scale: Option<usize>,
    program: &tir::Program,
    policy: pta::ContextPolicy,
    solver: pta::SolverKind,
) -> PtaBenchPoint {
    rec.reset();
    let opts = pta::PtaOptions { solver, ..Default::default() };
    let t0 = Instant::now();
    let result = pta::analyze_with(program, policy, &opts);
    let solve_s = t0.elapsed().as_secs_f64();
    std::hint::black_box(&result);
    let report = obs::json::parse(
        &rec.run_report(&[("program", name), ("pta_solver", solver.name())]).to_json(),
    )
    .expect("run report serializes to valid JSON");
    let counter = |key: &str| {
        report
            .get("counters")
            .and_then(|c| c.get(key))
            .and_then(obs::json::Value::as_u64)
            .unwrap_or(0)
    };
    PtaBenchPoint {
        program: name.to_owned(),
        scale,
        solver,
        solve_s,
        propagations: counter("pta_propagations"),
        deltas_pushed: counter("pta_deltas_pushed"),
        sccs_collapsed: counter("pta_sccs_collapsed"),
        nodes: counter("pta_nodes"),
    }
}

/// Benchmarks both points-to fixpoint strategies over every suite app and
/// one [`apps::scale`] program of the given `scale`. Returns two points
/// (delta, then reference) per program. Installs a fresh static metric
/// recorder; any previously installed recorder is replaced.
pub fn run_pta_bench(scale: usize) -> Vec<PtaBenchPoint> {
    let rec = obs::MemRecorder::install_static(obs::RingCapacity::default());
    let mut points = Vec::new();
    let mut both =
        |name: &str, sc: Option<usize>, program: &tir::Program, policy: &pta::ContextPolicy| {
            for solver in [pta::SolverKind::Delta, pta::SolverKind::Reference] {
                points.push(measure_pta(rec, name, sc, program, policy.clone(), solver));
            }
        };
    for app in apps::suite::all_apps() {
        both(app.name, None, &app.program, &builder::container_policy(&app));
    }
    let scaled = apps::scale::scaled_program(scale);
    both(&format!("scaled-{scale}"), Some(scale), &scaled, &pta::ContextPolicy::Insensitive);
    points
}

impl PtaBenchPoint {
    /// A structured JSON view of the point for the perf snapshot.
    pub fn to_value(&self) -> obs::json::Value {
        use obs::json::Value;
        let mut fields = vec![
            ("program".to_owned(), Value::str(&self.program)),
            ("solver".to_owned(), Value::str(self.solver.name())),
            ("pta_solve_s".to_owned(), Value::Float(self.solve_s)),
            ("pta_propagations".to_owned(), Value::uint(self.propagations)),
            ("pta_deltas_pushed".to_owned(), Value::uint(self.deltas_pushed)),
            ("pta_sccs_collapsed".to_owned(), Value::uint(self.sccs_collapsed)),
            ("pta_nodes".to_owned(), Value::uint(self.nodes)),
        ];
        if let Some(s) = self.scale {
            fields.insert(1, ("scale".to_owned(), Value::uint(s as u64)));
        }
        Value::Obj(fields)
    }
}

/// One wall-time sample of the scaled corpus under both fixpoint
/// strategies, for the crossover scan `reproduce pta` prints.
#[derive(Clone, Copy, Debug)]
pub struct CrossoverSample {
    /// Generator scale of the measured program.
    pub scale: usize,
    /// Best-of-three delta-solver wall time, seconds.
    pub delta_s: f64,
    /// Best-of-three reference-solver wall time, seconds.
    pub reference_s: f64,
}

/// Times both solvers on [`apps::scale`] programs at each of `scales`
/// (best of three runs per point, to shave scheduler noise) and returns
/// the samples plus the first scale where the delta solver's wall time
/// beats the reference solver's — the point where delta bookkeeping pays
/// for itself.
pub fn pta_walltime_crossover(scales: &[usize]) -> (Vec<CrossoverSample>, Option<usize>) {
    let time_solver = |program: &tir::Program, solver: pta::SolverKind| -> f64 {
        let opts = pta::PtaOptions { solver, ..Default::default() };
        (0..3)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(pta::analyze_with(
                    program,
                    pta::ContextPolicy::Insensitive,
                    &opts,
                ));
                t0.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let mut samples = Vec::new();
    let mut crossover = None;
    for &scale in scales {
        let program = apps::scale::scaled_program(scale);
        let sample = CrossoverSample {
            scale,
            delta_s: time_solver(&program, pta::SolverKind::Delta),
            reference_s: time_solver(&program, pta::SolverKind::Reference),
        };
        if crossover.is_none() && sample.delta_s < sample.reference_s {
            crossover = Some(scale);
        }
        samples.push(sample);
    }
    (samples, crossover)
}

/// Aggregated measurements of single-statement edits driven through the
/// incremental points-to pipeline on one program: summed edit-solve vs
/// from-scratch propagations, edit-solve latency quantiles, and whether
/// the canonicalized incremental state matched a from-scratch
/// `SolverKind::Reference` solve after every single batch.
#[derive(Clone, Debug)]
pub struct EditBenchPoint {
    /// Program name (an app, or `scaled-N` for the generated corpus).
    pub program: String,
    /// Generator scale, when the program came from [`apps::scale`].
    pub scale: Option<usize>,
    /// Single-statement edit batches measured (each candidate statement
    /// contributes a removal and a re-addition).
    pub edits: u64,
    /// Summed `EditSolveStats::propagations` across the batches.
    pub edit_propagations: u64,
    /// Summed propagations of a from-scratch delta solve of the edited
    /// program, one solve per batch — what a non-incremental pipeline
    /// would have paid.
    pub scratch_propagations: u64,
    /// Batches that took the deletion-then-rederive path.
    pub rebuilds: u64,
    /// Median edit-solve latency, microseconds (nearest rank).
    pub p50_us: u64,
    /// 99th-percentile edit-solve latency, microseconds.
    pub p99_us: u64,
    /// Worst edit-solve latency, microseconds.
    pub max_us: u64,
    /// Median from-scratch solve latency, microseconds, for contrast.
    pub scratch_p50_us: u64,
    /// True iff the reference oracle matched byte-for-byte after every
    /// batch.
    pub oracle_ok: bool,
}

impl EditBenchPoint {
    /// Edit-solve propagations as a fraction of from-scratch propagations
    /// (the CI gate requires ≤ 0.25 on the scaled corpus).
    pub fn propagation_ratio(&self) -> f64 {
        self.edit_propagations as f64 / (self.scratch_propagations as f64).max(1.0)
    }

    /// A structured JSON view of the point for the snapshot's `edits`
    /// section.
    pub fn to_value(&self) -> obs::json::Value {
        use obs::json::Value;
        let mut fields = vec![
            ("program".to_owned(), Value::str(&self.program)),
            ("edits".to_owned(), Value::uint(self.edits)),
            ("edit_propagations".to_owned(), Value::uint(self.edit_propagations)),
            ("scratch_propagations".to_owned(), Value::uint(self.scratch_propagations)),
            ("propagation_ratio".to_owned(), Value::Float(self.propagation_ratio())),
            ("rebuilds".to_owned(), Value::uint(self.rebuilds)),
            ("p50_us".to_owned(), Value::uint(self.p50_us)),
            ("p99_us".to_owned(), Value::uint(self.p99_us)),
            ("max_us".to_owned(), Value::uint(self.max_us)),
            ("scratch_p50_us".to_owned(), Value::uint(self.scratch_p50_us)),
            ("oracle_ok".to_owned(), Value::Bool(self.oracle_ok)),
        ];
        if let Some(s) = self.scale {
            fields.insert(1, ("scale".to_owned(), Value::uint(s as u64)));
        }
        Value::Obj(fields)
    }
}

/// Statements eligible as single-statement edit subjects: every command
/// whose printed text round-trips through the edit parser (validated on a
/// throwaway clone, so allocation-site uniqueness and control-flow
/// restrictions are enforced by the edit layer itself, not re-encoded
/// here). Sorted by (method, ordinal) for determinism.
fn edit_candidates(program: &tir::Program) -> Vec<(String, usize, String)> {
    let mut methods: Vec<tir::MethodId> =
        program.methods_by_name().values().flatten().copied().collect();
    methods.sort_by_key(|m| m.index());
    let mut out = Vec::new();
    for m in methods {
        let name = program.method_name(m);
        for (at, cid) in program.method_cmds(m).iter().enumerate() {
            let text = format!("{};", tir::print_cmd(program, program.cmd(*cid)));
            // Allocation sites stay reserved after removal, so a `new`
            // can never be re-added under its original name.
            if text.contains('@') {
                continue;
            }
            let mut probe = program.clone();
            let remove = tir::EditOp::RemoveStmt { method: name.clone(), at };
            let add = tir::EditOp::AddStmt { method: name.clone(), at, text: text.clone() };
            if tir::apply_edits(&mut probe, std::slice::from_ref(&remove)).is_ok()
                && tir::apply_edits(&mut probe, std::slice::from_ref(&add)).is_ok()
            {
                out.push((name.clone(), at, text));
            }
        }
    }
    out
}

/// Drives up to `max_edits` single-statement edit batches (remove a
/// statement, then restore it) through one long-lived [`pta::IncrementalPta`],
/// comparing each batch's cost against a from-scratch solve of the edited
/// program and checking the `SolverKind::Reference` oracle after every
/// batch. Candidates are stride-sampled across the whole program so the
/// measurements cover many methods, not just the first one.
fn measure_edit_point(
    name: &str,
    scale: Option<usize>,
    program: &tir::Program,
    policy: &pta::ContextPolicy,
    max_edits: usize,
) -> EditBenchPoint {
    let opts = pta::PtaOptions::default();
    let ref_opts = pta::PtaOptions { solver: pta::SolverKind::Reference, ..Default::default() };
    let mut prog = program.clone();
    let all = edit_candidates(&prog);
    let want = (max_edits / 2).max(1);
    let step = (all.len() / want).max(1);
    let picked: Vec<_> = all.into_iter().step_by(step).take(want).collect();

    let mut inc = pta::IncrementalPta::new(&prog, policy.clone(), &opts);
    let mut edit_us = Vec::new();
    let mut scratch_us = Vec::new();
    let mut point = EditBenchPoint {
        program: name.to_owned(),
        scale,
        edits: 0,
        edit_propagations: 0,
        scratch_propagations: 0,
        rebuilds: 0,
        p50_us: 0,
        p99_us: 0,
        max_us: 0,
        scratch_p50_us: 0,
        oracle_ok: true,
    };
    'candidates: for (method, at, text) in picked {
        let batches = [
            tir::EditOp::RemoveStmt { method: method.clone(), at },
            tir::EditOp::AddStmt { method, at, text },
        ];
        for op in batches {
            // Candidates were validated against the pristine program; a
            // failure here means earlier batches drifted the indices, so
            // stop rather than measure a different program.
            let Ok(applied) = tir::apply_edits(&mut prog, std::slice::from_ref(&op)) else {
                break 'candidates;
            };
            let t0 = Instant::now();
            let stats = inc.apply_edits(&prog, &applied);
            edit_us.push(t0.elapsed().as_micros() as u64);
            point.edits += 1;
            point.edit_propagations += stats.propagations;
            point.rebuilds += u64::from(stats.rebuilt);

            let t1 = Instant::now();
            let scratch = pta::IncrementalPta::new(&prog, policy.clone(), &opts);
            scratch_us.push(t1.elapsed().as_micros() as u64);
            point.scratch_propagations += scratch.propagations();

            let reference = pta::analyze_with(&prog, policy.clone(), &ref_opts);
            point.oracle_ok &= pta::canonical_text(&prog, &inc.result(&prog))
                == pta::canonical_text(&prog, &reference);
        }
    }
    let quantiles = |samples: &[u64]| {
        let mut window = obs::SlidingWindow::new(samples.len().max(1));
        for &s in samples {
            window.push(s);
        }
        (
            window.quantile(0.5).unwrap_or(0),
            window.quantile(0.99).unwrap_or(0),
            window.max().unwrap_or(0),
        )
    };
    (point.p50_us, point.p99_us, point.max_us) = quantiles(&edit_us);
    (point.scratch_p50_us, _, _) = quantiles(&scratch_us);
    point
}

/// Benchmarks single-statement edit re-analysis over every suite app and
/// one [`apps::scale`] program of the given `scale`, `max_edits` batches
/// per program. Returns one aggregated point per program.
pub fn run_edit_bench(scale: usize, max_edits: usize) -> Vec<EditBenchPoint> {
    let mut points = Vec::new();
    for app in apps::suite::all_apps() {
        points.push(measure_edit_point(
            app.name,
            None,
            &app.program,
            &builder::container_policy(&app),
            max_edits,
        ));
    }
    let scaled = apps::scale::scaled_program(scale);
    points.push(measure_edit_point(
        &format!("scaled-{scale}"),
        Some(scale),
        &scaled,
        &pta::ContextPolicy::Insensitive,
        max_edits,
    ));
    points
}

/// Aggregated measurements of demand-driven points-to queries on one
/// program: one `DemandPta::query_global` per global, each answer gated
/// fact-by-fact against the exhaustive oracle (so `drift` counts the
/// facts the gate had to correct — 0 means byte-identical throughout).
#[derive(Clone, Debug)]
pub struct DemandBenchPoint {
    /// Program name (an app, or `scaled-N` for the generated corpus).
    pub program: String,
    /// Generator scale, when the program came from [`apps::scale`].
    pub scale: Option<usize>,
    /// Demand queries issued (one per global).
    pub queries: u64,
    /// Median per-query latency, microseconds (nearest rank).
    pub p50_us: u64,
    /// 99th-percentile per-query latency, microseconds.
    pub p99_us: u64,
    /// Worst per-query latency, microseconds.
    pub max_us: u64,
    /// Mean per-query slice fraction (nodes touched / total copy-graph
    /// representatives).
    pub mean_slice_fraction: f64,
    /// Worst per-query slice fraction.
    pub max_slice_fraction: f64,
    /// Queries that exhausted their budget and fell back to the oracle.
    pub fallbacks: u64,
    /// Demand-computed facts the oracle gate had to replace (0 = every
    /// answer byte-identical to the exhaustive result).
    pub drift: u64,
    /// Copy-graph representatives in the traversal index — the
    /// denominator of every slice fraction.
    pub nodes_total: u64,
    /// Wall time of the exhaustive solve + index build the queries
    /// amortize, microseconds.
    pub build_us: u64,
}

impl DemandBenchPoint {
    /// A structured JSON view of the point for the snapshot's `demand`
    /// section.
    pub fn to_value(&self) -> obs::json::Value {
        use obs::json::Value;
        let mut fields = vec![
            ("program".to_owned(), Value::str(&self.program)),
            ("queries".to_owned(), Value::uint(self.queries)),
            ("p50_us".to_owned(), Value::uint(self.p50_us)),
            ("p99_us".to_owned(), Value::uint(self.p99_us)),
            ("max_us".to_owned(), Value::uint(self.max_us)),
            ("mean_slice_fraction".to_owned(), Value::Float(self.mean_slice_fraction)),
            ("max_slice_fraction".to_owned(), Value::Float(self.max_slice_fraction)),
            ("fallbacks".to_owned(), Value::uint(self.fallbacks)),
            ("drift".to_owned(), Value::uint(self.drift)),
            ("nodes_total".to_owned(), Value::uint(self.nodes_total)),
            ("build_us".to_owned(), Value::uint(self.build_us)),
        ];
        if let Some(sc) = self.scale {
            fields.insert(1, ("scale".to_owned(), Value::uint(sc as u64)));
        }
        Value::Obj(fields)
    }
}

/// Builds one demand tier over `program` and queries every global once,
/// cold (no slice-cache hits inflate the latencies: each global is asked
/// exactly once).
pub fn measure_demand_point(
    name: &str,
    scale: Option<usize>,
    program: &tir::Program,
    policy: &pta::ContextPolicy,
) -> DemandBenchPoint {
    let opts = pta::PtaOptions { solver: pta::SolverKind::Demand, ..Default::default() };
    let t0 = Instant::now();
    let mut demand = pta::DemandPta::analyze(program, policy.clone(), &opts);
    let build_us = t0.elapsed().as_micros() as u64;

    let mut query_us = Vec::new();
    let mut max_frac = 0.0f64;
    for g in program.global_ids() {
        let t = Instant::now();
        let (partial, st) = demand.query_global(program, g);
        query_us.push(t.elapsed().as_micros() as u64);
        std::hint::black_box(&partial);
        if st.slice_fraction > max_frac {
            max_frac = st.slice_fraction;
        }
    }
    let stats = *demand.stats();
    let mut window = obs::SlidingWindow::new(query_us.len().max(1));
    for &us in &query_us {
        window.push(us);
    }
    DemandBenchPoint {
        program: name.to_owned(),
        scale,
        queries: stats.queries,
        p50_us: window.quantile(0.5).unwrap_or(0),
        p99_us: window.quantile(0.99).unwrap_or(0),
        max_us: window.max().unwrap_or(0),
        mean_slice_fraction: stats.mean_slice_fraction(),
        max_slice_fraction: max_frac,
        fallbacks: stats.fallbacks,
        drift: stats.drift,
        nodes_total: demand.total_nodes() as u64,
        build_us,
    }
}

/// Benchmarks the demand tier over every suite app and the generated
/// corpus at each scale in `1..=max_scale`. Returns one aggregated point
/// per program, apps first, then `scaled-1` through `scaled-N` — the
/// scaled run shows whether per-query latency grows with program size or
/// with slice size.
pub fn run_demand_bench(max_scale: usize) -> Vec<DemandBenchPoint> {
    let mut points = Vec::new();
    for app in apps::suite::all_apps() {
        points.push(measure_demand_point(
            app.name,
            None,
            &app.program,
            &builder::container_policy(&app),
        ));
    }
    for scale in 1..=max_scale.max(1) {
        let scaled = apps::scale::scaled_program(scale);
        points.push(measure_demand_point(
            &format!("scaled-{scale}"),
            Some(scale),
            &scaled,
            &pta::ContextPolicy::Insensitive,
        ));
    }
    points
}

/// One measured point of the null-dereference client benchmark: every
/// candidate dereference site of one program pushed through the full
/// refutation stack, with the jobs-1 report byte-compared against a
/// jobs-4 rerun and (for generated programs) the alarm count checked
/// against the generator's ground truth. `drift` counts violations of
/// either property — 0 means the answers are scheduler-independent and
/// exactly right.
#[derive(Clone, Debug)]
pub struct NullBenchPoint {
    /// Program name (an app, or `scaled-null-N` for the generated corpus).
    pub program: String,
    /// Generator scale, when the program came from [`apps::scale`].
    pub scale: Option<usize>,
    /// May-null dereference sites the front end flagged.
    pub candidate_sites: u64,
    /// Candidate sites fully refuted.
    pub refuted_sites: u64,
    /// Surviving alarms (each carries a concrete witness).
    pub alarms: u64,
    /// Ground-truth alarm count, when the program has one.
    pub expected_alarms: Option<u64>,
    /// Per-site flow edges refuted by symbolic execution.
    pub edges_refuted: u64,
    /// Sites whose verdict degraded to a budget-exhausted alarm.
    pub edge_timeouts: u64,
    /// Ground-truth mismatches plus jobs-4 report divergences (0 = the
    /// client answered correctly and deterministically).
    pub drift: u64,
    /// Wall time of the jobs-1 pass, microseconds.
    pub time_us: u64,
}

impl NullBenchPoint {
    /// A structured JSON view of the point for the snapshot's `null`
    /// section.
    pub fn to_value(&self) -> obs::json::Value {
        use obs::json::Value;
        let mut fields = vec![
            ("program".to_owned(), Value::str(&self.program)),
            ("candidate_sites".to_owned(), Value::uint(self.candidate_sites)),
            ("refuted_sites".to_owned(), Value::uint(self.refuted_sites)),
            ("alarms".to_owned(), Value::uint(self.alarms)),
            ("edges_refuted".to_owned(), Value::uint(self.edges_refuted)),
            ("edge_timeouts".to_owned(), Value::uint(self.edge_timeouts)),
            ("drift".to_owned(), Value::uint(self.drift)),
            ("time_us".to_owned(), Value::uint(self.time_us)),
        ];
        if let Some(expected) = self.expected_alarms {
            fields.insert(4, ("expected_alarms".to_owned(), Value::uint(expected)));
        }
        if let Some(sc) = self.scale {
            fields.insert(1, ("scale".to_owned(), Value::uint(sc as u64)));
        }
        Value::Obj(fields)
    }
}

/// Runs the null client once sequentially (the timed pass), reruns it
/// with four workers, and folds both the jobs-4 byte comparison and the
/// optional ground-truth check into the point's `drift` counter.
pub fn measure_null_point(
    name: &str,
    scale: Option<usize>,
    program: &tir::Program,
    expected_alarms: Option<u64>,
) -> NullBenchPoint {
    let t0 = Instant::now();
    let report = Thresher::new(program).check_null_derefs();
    let time_us = t0.elapsed().as_micros() as u64;
    let parallel = Thresher::new(program).with_jobs(4).check_null_derefs();
    let mut drift = 0u64;
    if report.to_value(program).to_json() != parallel.to_value(program).to_json() {
        drift += 1;
    }
    if let Some(expected) = expected_alarms {
        if report.num_alarms() as u64 != expected {
            drift += 1;
        }
    }
    NullBenchPoint {
        program: name.to_owned(),
        scale,
        candidate_sites: report.candidate_sites as u64,
        refuted_sites: report.refuted_sites as u64,
        alarms: report.num_alarms() as u64,
        expected_alarms,
        edges_refuted: report.edges_refuted as u64,
        edge_timeouts: report.edge_timeouts as u64,
        drift,
        time_us,
    }
}

/// Benchmarks the null client over every suite app (no ground truth —
/// the numbers are recorded for diffing) and the generated null corpus
/// at doubling scales up to `max_scale`, where the alarm count is
/// pinned to [`apps::scale::expected_null_alarms`].
pub fn run_null_bench(max_scale: usize) -> Vec<NullBenchPoint> {
    let mut points = Vec::new();
    for app in apps::suite::all_apps() {
        points.push(measure_null_point(app.name, None, &app.program, None));
    }
    let top = max_scale.max(1);
    let mut scales = Vec::new();
    let mut s = 1;
    while s < top {
        scales.push(s);
        s *= 2;
    }
    scales.push(top);
    for scale in scales {
        let scaled = apps::scale::scaled_null_program(scale);
        let expected = apps::scale::expected_null_alarms(scale) as u64;
        points.push(measure_null_point(
            &format!("scaled-null-{scale}"),
            Some(scale),
            &scaled,
            Some(expected),
        ));
    }
    points
}

/// Drops a `--jobs` sweep measured on a single-CPU host. Every `jobs >
/// 1` point on such a host measures scheduler contention, not parallel
/// scaling, and a snapshot that records contention data as a
/// `jobs_sweep` section poisons every later cross-commit diff — so the
/// sweep is refused outright rather than written with a caveat.
pub fn admissible_jobs_sweep(host_cpus: usize, points: Vec<JobsSweepPoint>) -> Vec<JobsSweepPoint> {
    if host_cpus <= 1 {
        Vec::new()
    } else {
        points
    }
}

/// One cold-vs-warm measurement of the persistent refutation cache on one
/// app: a cold run (fresh cache directory) populates the store, a warm
/// rerun over the unchanged program must answer every committed edge
/// decision from disk without exploring a single path program.
#[derive(Clone, Debug)]
pub struct IncrementalPoint {
    /// Benchmark name.
    pub name: &'static str,
    /// Cold (cache-populating) wall-clock time.
    pub cold: Duration,
    /// Warm (cache-served) wall-clock time.
    pub warm: Duration,
    /// Committed edge decisions per run (identical cold and warm).
    pub decisions: usize,
    /// Warm-run decisions served from the store (`cache_hits`).
    pub warm_hits: usize,
    /// Warm-run decisions computed live (`cache_misses`; must be 0).
    pub warm_misses: usize,
    /// Warm-run decisions recomputed after invalidation (must be 0 on an
    /// unchanged program).
    pub warm_invalidated: usize,
    /// Path programs explored live during the warm run (must be 0: the
    /// whole point of the cache).
    pub warm_fresh_paths: u64,
    /// Do the cold and warm reports agree on every alarm verdict and
    /// every edge counter?
    pub reports_agree: bool,
}

impl IncrementalPoint {
    /// Cold / warm wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.cold.as_secs_f64() / self.warm.as_secs_f64().max(1e-9)
    }

    /// The incremental-soundness gate: the warm run reproduced the cold
    /// report entirely from the store — every decision a hit, zero live
    /// path explorations.
    pub fn warm_is_pure(&self) -> bool {
        self.reports_agree
            && self.warm_misses == 0
            && self.warm_invalidated == 0
            && self.warm_fresh_paths == 0
            && self.warm_hits == self.decisions
    }
}

/// Result equivalence for the incremental gate: same alarms in the same
/// order with the same verdicts, and the same edge counters. (Cache
/// counters are deliberately not compared — they are the run's cold/warm
/// provenance, not its result.)
fn leak_reports_agree(a: &android::LeakReport, b: &android::LeakReport) -> bool {
    a.alarms.len() == b.alarms.len()
        && a.alarms
            .iter()
            .zip(&b.alarms)
            .all(|((aa, ra), (ab, rb))| aa == ab && ra.is_refuted() == rb.is_refuted())
        && a.stats.edges_refuted == b.stats.edges_refuted
        && a.stats.edges_witnessed == b.stats.edges_witnessed
        && a.stats.edge_timeouts == b.stats.edge_timeouts
        && a.stats.retries == b.stats.retries
        && a.stats.degraded_decisions == b.stats.degraded_decisions
        && a.stats.edges_descheduled == b.stats.edges_descheduled
}

/// Runs the leak client twice over `app` against a persistent cache
/// rooted at `cache_dir` — cold then warm — and checks that the warm run
/// was served entirely from the store. The caller provides a *fresh*
/// directory (an existing store would make the first run warm).
pub fn run_incremental(app: &BenchApp, cache_dir: &Path, config: SymexConfig) -> IncrementalPoint {
    let run = || {
        let t0 = Instant::now();
        let report = ActivityLeakChecker::new(&app.program)
            .with_policy(builder::container_policy(app))
            .with_config(config.clone())
            .with_cache(cache_dir, CacheMode::ReadWrite)
            .check();
        (t0.elapsed(), report)
    };
    let (cold, cold_report) = run();
    let (warm, warm_report) = run();
    let s = &warm_report.stats;
    IncrementalPoint {
        name: app.name,
        cold,
        warm,
        decisions: s.cache_hits + s.cache_misses + s.cache_invalidated,
        warm_hits: s.cache_hits,
        warm_misses: s.cache_misses,
        warm_invalidated: s.cache_invalidated,
        warm_fresh_paths: s.fresh_path_programs,
        reports_agree: leak_reports_agree(&cold_report, &warm_report),
    }
}

/// Formats a Table 1 row in the paper's column order.
pub fn format_table1_row(r: &Table1Row) -> String {
    let pct = |n: usize, d: usize| (n * 100).checked_div(d).unwrap_or(0);
    let base = format!(
        "{:<14} {:>6} {:^4} {:>6} {:>5} ({:>3}%) {:>5} ({:>3}%) {:>5} ({:>3}%) {:>5} {:>8} {:>7} {:>7} {:>3} {:>8.2}",
        r.name,
        r.size_cmds,
        if r.annotated { "Y" } else { "N" },
        r.alarms,
        r.refuted_alarms,
        pct(r.refuted_alarms, r.alarms),
        r.true_alarms,
        pct(r.true_alarms, r.alarms),
        r.false_alarms,
        pct(r.false_alarms, r.alarms),
        r.fields,
        r.refuted_fields,
        r.edges_refuted,
        r.edges_witnessed,
        r.timeouts,
        r.time.as_secs_f64(),
    );
    // Abort/degradation provenance only when something actually aborted or
    // was retried, so clean runs keep the paper's exact column layout.
    if r.timeouts > 0 || r.retries > 0 {
        format!(
            "{base}  [aborts: {}; retries: {}; degraded: {}]",
            r.aborts.describe(),
            r.retries,
            r.degraded_decisions
        )
    } else {
        base
    }
}

/// Schema identifier written into every perf snapshot (see
/// [`perf_snapshot_json`]). Version 3 added the `serve` section
/// (daemon latency quantiles + per-phase cost splits); version 4 added
/// the `edits` section (per-edit latency quantiles + propagation ratio
/// of incremental edit re-analysis); version 5 added the `demand`
/// section (per-query latency quantiles + slice fractions of the
/// demand-driven points-to tier); version 6 added the `null` section
/// ([`NullBenchPoint`]: null-dereference client verdicts + drift vs
/// generator ground truth) and made the `jobs_sweep` section refuse to
/// appear at all on single-CPU hosts (see [`admissible_jobs_sweep`])
/// instead of recording contention data behind a `host_cpus` caveat.
pub const SNAPSHOT_SCHEMA: &str = "thresher.bench_snapshot/6";

/// One `reproduce serve` measurement: request-latency quantiles and the
/// summed per-phase cost splits of a resident daemon answering `rounds`
/// analyses of one app, straight from the response `cost` blocks.
#[derive(Clone, Debug)]
pub struct ServeLatencyPoint {
    /// Benchmark name.
    pub name: String,
    /// Resident (post-load) requests measured.
    pub requests: u64,
    /// Median request wall time, microseconds (nearest rank).
    pub p50_us: u64,
    /// 99th-percentile request wall time, microseconds (nearest rank).
    pub p99_us: u64,
    /// Worst request wall time, microseconds.
    pub max_us: u64,
    /// Summed `cost.phases.parse_us` over the measured requests.
    pub parse_us: u64,
    /// Summed `cost.phases.pta_us`.
    pub pta_us: u64,
    /// Summed `cost.phases.symex_us`.
    pub symex_us: u64,
    /// Summed `cost.phases.cache_us`.
    pub cache_us: u64,
}

impl ServeLatencyPoint {
    /// Builds a point from per-request `(wall_us, parse, pta, symex,
    /// cache)` cost samples. Quantiles are exact nearest-rank (the sample
    /// set is small and fully retained).
    pub fn from_samples(name: impl Into<String>, samples: &[(u64, u64, u64, u64, u64)]) -> Self {
        let mut window = obs::SlidingWindow::new(samples.len().max(1));
        for &(wall, ..) in samples {
            window.push(wall);
        }
        let sum = |f: fn(&(u64, u64, u64, u64, u64)) -> u64| samples.iter().map(f).sum();
        ServeLatencyPoint {
            name: name.into(),
            requests: samples.len() as u64,
            p50_us: window.quantile(0.5).unwrap_or(0),
            p99_us: window.quantile(0.99).unwrap_or(0),
            max_us: window.max().unwrap_or(0),
            parse_us: sum(|s| s.1),
            pta_us: sum(|s| s.2),
            symex_us: sum(|s| s.3),
            cache_us: sum(|s| s.4),
        }
    }

    /// A structured JSON view of the point, for the snapshot's `serve`
    /// section.
    pub fn to_value(&self) -> obs::json::Value {
        use obs::json::Value;
        Value::Obj(vec![
            ("name".to_owned(), Value::str(self.name.clone())),
            ("requests".to_owned(), Value::uint(self.requests)),
            ("p50_us".to_owned(), Value::uint(self.p50_us)),
            ("p99_us".to_owned(), Value::uint(self.p99_us)),
            ("max_us".to_owned(), Value::uint(self.max_us)),
            (
                "phases_us".to_owned(),
                Value::Obj(vec![
                    ("parse".to_owned(), Value::uint(self.parse_us)),
                    ("pta".to_owned(), Value::uint(self.pta_us)),
                    ("symex".to_owned(), Value::uint(self.symex_us)),
                    ("cache".to_owned(), Value::uint(self.cache_us)),
                ]),
            ),
        ])
    }
}

impl Table1Row {
    /// A structured JSON view of the row, mirroring the printed columns
    /// plus abort/degradation provenance.
    pub fn to_value(&self) -> obs::json::Value {
        use obs::json::Value;
        let aborts = self
            .aborts
            .by_key()
            .iter()
            .map(|(k, n)| ((*k).to_owned(), Value::uint(*n)))
            .collect::<Vec<_>>();
        Value::Obj(vec![
            ("name".to_owned(), Value::str(self.name)),
            ("size_cmds".to_owned(), Value::uint(self.size_cmds as u64)),
            ("annotated".to_owned(), Value::Bool(self.annotated)),
            ("alarms".to_owned(), Value::uint(self.alarms as u64)),
            ("refuted_alarms".to_owned(), Value::uint(self.refuted_alarms as u64)),
            ("true_alarms".to_owned(), Value::uint(self.true_alarms as u64)),
            ("false_alarms".to_owned(), Value::uint(self.false_alarms as u64)),
            ("fields".to_owned(), Value::uint(self.fields as u64)),
            ("refuted_fields".to_owned(), Value::uint(self.refuted_fields as u64)),
            ("edges_refuted".to_owned(), Value::uint(self.edges_refuted as u64)),
            ("edges_witnessed".to_owned(), Value::uint(self.edges_witnessed as u64)),
            ("timeouts".to_owned(), Value::uint(self.timeouts as u64)),
            ("aborts".to_owned(), Value::Obj(aborts)),
            ("retries".to_owned(), Value::uint(self.retries as u64)),
            ("degraded_decisions".to_owned(), Value::uint(self.degraded_decisions as u64)),
            ("time_s".to_owned(), Value::Float(self.time.as_secs_f64())),
        ])
    }
}

/// Serializes a machine-readable perf snapshot of a Table 1 run — the
/// payload of the `BENCH_<timestamp>.json` files the `reproduce` binary
/// emits so runs can be diffed across commits.
pub fn perf_snapshot_json(rows: &[Table1Row], unix_time_s: u64, budget: u64) -> String {
    perf_snapshot_json_with_sweep(rows, unix_time_s, budget, &[])
}

/// [`perf_snapshot_json`] extended with a `--jobs` scaling sweep. When
/// `sweep` is non-empty an additional `jobs_sweep` key records
/// `{jobs, wall_time_s, speedup_vs_1}` per point; speedups are relative
/// to the sweep's `jobs = 1` entry.
pub fn perf_snapshot_json_with_sweep(
    rows: &[Table1Row],
    unix_time_s: u64,
    budget: u64,
    sweep: &[JobsSweepPoint],
) -> String {
    perf_snapshot_json_full(rows, unix_time_s, budget, sweep, &[], &[], &[], &[], &[])
}

/// The full snapshot serializer (schema `thresher.bench_snapshot/6`):
/// Table 1 rows, an optional `--jobs` sweep, an optional `pta` phase
/// breakdown of [`PtaBenchPoint`]s (per program × solver: solve wall
/// time, propagation/delta/SCC effort counters), an optional `serve`
/// section of [`ServeLatencyPoint`]s (daemon latency quantiles +
/// per-phase cost splits), and an optional `edits` section of
/// [`EditBenchPoint`]s (incremental edit latency quantiles + propagation
/// ratio vs from-scratch), an optional `demand` section of
/// [`DemandBenchPoint`]s (demand-tier query latency quantiles + slice
/// fractions), and an optional `null` section of [`NullBenchPoint`]s
/// (null-dereference client verdicts + drift). Pass `sweep` through
/// [`admissible_jobs_sweep`] first — a sweep measured on a single-CPU
/// host must not be snapshotted at all.
#[allow(clippy::too_many_arguments)]
pub fn perf_snapshot_json_full(
    rows: &[Table1Row],
    unix_time_s: u64,
    budget: u64,
    sweep: &[JobsSweepPoint],
    pta_points: &[PtaBenchPoint],
    serve_points: &[ServeLatencyPoint],
    edit_points: &[EditBenchPoint],
    demand_points: &[DemandBenchPoint],
    null_points: &[NullBenchPoint],
) -> String {
    use obs::json::Value;
    let mut fields = vec![
        ("schema".to_owned(), Value::str(SNAPSHOT_SCHEMA)),
        ("unix_time_s".to_owned(), Value::uint(unix_time_s)),
        ("budget".to_owned(), Value::uint(budget)),
        ("rows".to_owned(), Value::Arr(rows.iter().map(Table1Row::to_value).collect())),
    ];
    if !sweep.is_empty() {
        let baseline = sweep.iter().find(|p| p.jobs == 1).map_or_else(|| sweep[0].wall, |p| p.wall);
        let points = sweep
            .iter()
            .map(|p| {
                Value::Obj(vec![
                    ("jobs".to_owned(), Value::uint(p.jobs as u64)),
                    ("wall_time_s".to_owned(), Value::Float(p.wall.as_secs_f64())),
                    ("speedup_vs_1".to_owned(), Value::Float(p.speedup_vs(baseline))),
                ])
            })
            .collect();
        // Wall-clock scaling is only meaningful relative to the cores the
        // sweep actually had; record them so snapshots from different
        // hosts can be compared honestly.
        fields.push(("host_cpus".to_owned(), Value::uint(thresher::default_jobs() as u64)));
        fields.push(("jobs_sweep".to_owned(), Value::Arr(points)));
    }
    if !pta_points.is_empty() {
        fields.push((
            "pta".to_owned(),
            Value::Arr(pta_points.iter().map(PtaBenchPoint::to_value).collect()),
        ));
    }
    if !serve_points.is_empty() {
        fields.push((
            "serve".to_owned(),
            Value::Arr(serve_points.iter().map(ServeLatencyPoint::to_value).collect()),
        ));
    }
    if !edit_points.is_empty() {
        fields.push((
            "edits".to_owned(),
            Value::Arr(edit_points.iter().map(EditBenchPoint::to_value).collect()),
        ));
    }
    if !demand_points.is_empty() {
        fields.push((
            "demand".to_owned(),
            Value::Arr(demand_points.iter().map(DemandBenchPoint::to_value).collect()),
        ));
    }
    if !null_points.is_empty() {
        fields.push((
            "null".to_owned(),
            Value::Arr(null_points.iter().map(NullBenchPoint::to_value).collect()),
        ));
    }
    Value::Obj(fields).to_json()
}

/// The Table 1 header matching [`format_table1_row`].
pub fn table1_header() -> String {
    format!(
        "{:<14} {:>6} {:^4} {:>6} {:>12} {:>12} {:>12} {:>5} {:>8} {:>7} {:>7} {:>3} {:>8}",
        "Benchmark",
        "Cmds",
        "Ann?",
        "Alrms",
        "RefA(%)",
        "TruA(%)",
        "FalA(%)",
        "Flds",
        "RefFlds",
        "RefEdg",
        "WitEdg",
        "TO",
        "T(s)"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_row_on_droidlife() {
        let app = apps::suite::droidlife();
        let row = run_table1_row(&app, false, SymexConfig::default());
        assert_eq!(row.alarms, row.true_alarms + row.false_alarms + row.refuted_alarms);
        assert_eq!(row.refuted_alarms, 0);
        assert_eq!(row.true_alarms, 3);
        let line = format_table1_row(&row);
        assert!(line.contains("DroidLife"), "{line}");
    }

    #[test]
    fn loop_ablation_shape() {
        let abl = run_loop_ablation();
        assert!(abl.infer_refutes);
        assert!(!abl.drop_all_refutes);
    }

    #[test]
    fn single_cpu_host_refuses_the_jobs_sweep_snapshot() {
        let sweep = vec![
            JobsSweepPoint { jobs: 1, wall: Duration::from_millis(100) },
            JobsSweepPoint { jobs: 4, wall: Duration::from_millis(80) },
        ];
        // A sweep measured on one CPU is dropped wholesale, so the
        // snapshot carries neither contention data nor the host_cpus
        // caveat that used to footnote it.
        let gated = admissible_jobs_sweep(1, sweep.clone());
        assert!(gated.is_empty(), "1-CPU sweep must be refused");
        let snap = perf_snapshot_json_full(&[], 0, 10_000, &gated, &[], &[], &[], &[], &[]);
        assert!(!snap.contains("jobs_sweep"), "refused sweep still snapshotted: {snap}");
        assert!(!snap.contains("host_cpus"), "refused sweep left its caveat behind: {snap}");
        // Multi-CPU hosts keep their measurements untouched.
        let kept = admissible_jobs_sweep(2, sweep);
        assert_eq!(kept.len(), 2);
        let snap = perf_snapshot_json_full(&[], 0, 10_000, &kept, &[], &[], &[], &[], &[]);
        assert!(snap.contains("\"jobs_sweep\":["), "{snap}");
        assert!(snap.contains("\"host_cpus\":"), "{snap}");
    }

    #[test]
    fn null_bench_point_pins_scaled_ground_truth() {
        let program = apps::scale::scaled_null_program(2);
        let expected = apps::scale::expected_null_alarms(2) as u64;
        let p = measure_null_point("scaled-null-2", Some(2), &program, Some(expected));
        assert_eq!(p.alarms, expected, "null client missed the generator's ground truth");
        assert_eq!(p.drift, 0, "null report drifted (ground truth or jobs-4 bytes)");
        assert!(p.candidate_sites > p.alarms, "nothing was refuted");
        assert_eq!(p.edge_timeouts, 0, "budget artifact on the scaled null corpus");
        let snap =
            perf_snapshot_json_full(&[], 0, 10_000, &[], &[], &[], &[], &[], std::slice::from_ref(&p));
        assert!(snap.contains("\"schema\":\"thresher.bench_snapshot/6\""), "{snap}");
        assert!(snap.contains("\"null\":[{"), "{snap}");
        assert!(snap.contains("\"expected_alarms\":"), "{snap}");
    }

    #[test]
    fn repr_comparison_reports_slowdown() {
        let app = apps::suite::droidlife();
        let cmp =
            run_repr_comparison(&app, false, Representation::FullySymbolic, SymexConfig::default());
        // Precision must not differ on DroidLife (everything witnessed).
        assert_eq!(cmp.mixed_refuted, cmp.other_refuted);
        assert!(cmp.slowdown() > 0.0);
    }
}
